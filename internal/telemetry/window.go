package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"warden/internal/core"
	"warden/internal/topology"
)

// WinCounters is the per-window counter bundle. Delta-valued fields come
// from instruction-level events only (see the package comment's attribution
// model); Transactions/Evictions/Reconciles are protocol-event occurrence
// counts.
type WinCounters struct {
	Instructions  uint64 `json:"instr"`
	Loads         uint64 `json:"loads"`
	Stores        uint64 `json:"stores"`
	Atomics       uint64 `json:"atomics"`
	Transactions  uint64 `json:"txns"`
	Invalidations uint64 `json:"inv"`
	Downgrades    uint64 `json:"downg"`
	Evictions     uint64 `json:"evicts"`
	Reconciles    uint64 `json:"reconciles"`
	Msgs          uint64 `json:"msgs"`
	FlitHops      uint64 `json:"flit_hops"`
	DRAMAccesses  uint64 `json:"dram"`
	WardAccesses  uint64 `json:"ward"`
	LatencySum    uint64 `json:"latency_sum"` // memory-latency cycles charged to instructions
}

// Add accumulates o into c.
func (c *WinCounters) Add(o *WinCounters) {
	c.Instructions += o.Instructions
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Atomics += o.Atomics
	c.Transactions += o.Transactions
	c.Invalidations += o.Invalidations
	c.Downgrades += o.Downgrades
	c.Evictions += o.Evictions
	c.Reconciles += o.Reconciles
	c.Msgs += o.Msgs
	c.FlitHops += o.FlitHops
	c.DRAMAccesses += o.DRAMAccesses
	c.WardAccesses += o.WardAccesses
	c.LatencySum += o.LatencySum
}

// instruction accounts an instruction-level event's deltas.
func (c *WinCounters) instruction(ev *core.Event) {
	switch ev.Kind {
	case core.EvLoad:
		c.Loads++
		c.Instructions++
		c.LatencySum += ev.Latency
	case core.EvStore:
		c.Stores++
		c.Instructions++
		c.LatencySum += ev.Latency
	case core.EvAtomic:
		c.Atomics++
		c.Instructions++
		c.LatencySum += ev.Latency
	case core.EvCompute:
		c.Instructions += ev.Arg1
	case core.EvFence, core.EvRegionAdd, core.EvRegionRemove:
		c.Instructions++
	}
	c.Invalidations += ev.Ctrs.Invalidations
	c.Downgrades += ev.Ctrs.Downgrades
	c.Msgs += ev.Ctrs.TotalMsgs()
	c.FlitHops += ev.Ctrs.NoCFlitHops
	c.DRAMAccesses += ev.Ctrs.DRAMAccesses
	c.WardAccesses += ev.Ctrs.WardAccesses
}

// Window is one sampling window: counters for [Start, Start+WindowCycles).
type Window struct {
	Index     uint64                         `json:"window"`
	Start     uint64                         `json:"start"` // first cycle of the window
	Total     WinCounters                    `json:"total"`
	PerCore   []WinCounters                  `json:"per_core"`             // indexed by core id (instruction view)
	PerDir    []WinCounters                  `json:"per_dir"`              // indexed by home socket (directory view)
	PerRegion map[core.RegionID]*WinCounters `json:"per_region,omitempty"` // WARD region activity
}

// region returns the lazily allocated per-region counters for id.
func (w *Window) region(id core.RegionID) *WinCounters {
	if w.PerRegion == nil {
		w.PerRegion = make(map[core.RegionID]*WinCounters)
	}
	c := w.PerRegion[id]
	if c == nil {
		c = &WinCounters{}
		w.PerRegion[id] = c
	}
	return c
}

// Windows maintains the ring of live sampling windows, keyed by simulated
// cycle. Events are bucketed by their Cycle stamp; because phase markers can
// carry cycle stamps slightly ahead of other threads' subsequent events, the
// ring accepts out-of-order arrivals anywhere within its span and counts
// (rather than corrupts) arrivals older than the span (LateDrops).
type Windows struct {
	WindowCycles uint64

	cfg  topology.Config
	base uint64    // Index of wins[0]
	wins []*Window // contiguous window indices [base, base+len)

	cap int

	// EvictedWindows counts windows pushed out of the ring; their totals
	// accumulate in EvictedTotals so nothing is silently lost.
	EvictedWindows uint64
	EvictedTotals  WinCounters
	// LateDrops counts events whose window had already been evicted.
	LateDrops uint64
}

func newWindows(cfg topology.Config, windowCycles uint64, ringWindows int) *Windows {
	return &Windows{WindowCycles: windowCycles, cfg: cfg, cap: ringWindows}
}

// newWindow allocates the window with the given index.
func (ws *Windows) newWindow(idx uint64) *Window {
	return &Window{
		Index:   idx,
		Start:   idx * ws.WindowCycles,
		PerCore: make([]WinCounters, ws.cfg.Cores()),
		PerDir:  make([]WinCounters, ws.cfg.Sockets),
	}
}

// evictFront folds the oldest window into EvictedTotals and drops it.
func (ws *Windows) evictFront() {
	ws.EvictedTotals.Add(&ws.wins[0].Total)
	ws.EvictedWindows++
	ws.wins[0] = nil
	ws.wins = ws.wins[1:]
	ws.base++
}

// window returns the live window containing cycle, materializing intermediate
// empty windows so the exported series is contiguous. Returns nil for a
// cycle older than the ring's span.
func (ws *Windows) window(cycle uint64) *Window {
	idx := cycle / ws.WindowCycles
	if len(ws.wins) == 0 {
		ws.base = idx
		ws.wins = append(ws.wins, ws.newWindow(idx))
		return ws.wins[0]
	}
	if idx < ws.base {
		ws.LateDrops++
		return nil
	}
	if idx >= ws.base+uint64(len(ws.wins))+uint64(ws.cap) {
		// The gap alone exceeds the ring: everything live would be evicted
		// while materializing it, so fold it all up front and restart.
		for len(ws.wins) > 0 {
			ws.evictFront()
		}
		ws.base = idx
		ws.wins = append(ws.wins, ws.newWindow(idx))
		return ws.wins[0]
	}
	for idx >= ws.base+uint64(len(ws.wins)) {
		ws.wins = append(ws.wins, ws.newWindow(ws.base+uint64(len(ws.wins))))
		if len(ws.wins) > ws.cap {
			ws.evictFront()
		}
	}
	return ws.wins[idx-ws.base]
}

// observe routes one event into its window.
func (ws *Windows) observe(ev *core.Event) {
	w := ws.window(ev.Cycle)
	if w == nil {
		return
	}
	switch ev.Kind {
	case core.EvTransaction:
		w.Total.Transactions++
		d := &w.PerDir[ws.cfg.HomeSocket(uint64(ev.Block))]
		d.Transactions++
		d.Invalidations += ev.Ctrs.Invalidations
		d.Downgrades += ev.Ctrs.Downgrades
		d.Msgs += ev.Ctrs.TotalMsgs()
		if ev.Region != core.NullRegion {
			w.region(ev.Region).Transactions++
		}
	case core.EvEvict:
		w.Total.Evictions++
		w.PerDir[ws.cfg.HomeSocket(uint64(ev.Block))].Evictions++
	case core.EvReconcile:
		w.Total.Reconciles++
		w.PerDir[ws.cfg.HomeSocket(uint64(ev.Block))].Reconciles++
		if ev.Region != core.NullRegion {
			w.region(ev.Region).Reconciles++
		}
	case core.EvPhaseBegin, core.EvPhaseEnd:
		// Markers carry no counters.
	default:
		if ev.Kind.Instruction() {
			w.Total.instruction(ev)
			if ev.Core >= 0 && ev.Core < len(w.PerCore) {
				w.PerCore[ev.Core].instruction(ev)
			}
			if ev.Region != core.NullRegion {
				w.region(ev.Region).instruction(ev)
			}
		}
	}
}

// Live returns the live windows in ascending index order. The slice aliases
// the ring; treat it as read-only.
func (ws *Windows) Live() []*Window { return ws.wins }

// WriteCSV dumps the whole-machine series as CSV, one row per live window.
func (ws *Windows) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "window,start_cycle,instr,loads,stores,atomics,txns,inv,downg,evicts,reconciles,msgs,flit_hops,dram,ward,latency_sum"); err != nil {
		return err
	}
	for _, win := range ws.wins {
		t := &win.Total
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			win.Index, win.Start, t.Instructions, t.Loads, t.Stores, t.Atomics,
			t.Transactions, t.Invalidations, t.Downgrades, t.Evictions, t.Reconciles,
			t.Msgs, t.FlitHops, t.DRAMAccesses, t.WardAccesses, t.LatencySum); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL dumps every live window as one JSON object per line, including
// the per-core, per-directory, and per-region splits. encoding/json emits
// map keys in sorted order, so output is deterministic.
func (ws *Windows) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, win := range ws.wins {
		if err := enc.Encode(win); err != nil {
			return err
		}
	}
	return nil
}

// Series extracts one per-window value across the live windows, for
// sparklines and plots.
func (ws *Windows) Series(f func(*WinCounters) uint64) []uint64 {
	out := make([]uint64, len(ws.wins))
	for i, win := range ws.wins {
		out[i] = f(&win.Total)
	}
	return out
}

// RegionIDs returns the region ids that appear in any live window, sorted.
func (ws *Windows) RegionIDs() []core.RegionID {
	seen := make(map[core.RegionID]bool)
	for _, win := range ws.wins {
		for id := range win.PerRegion {
			seen[id] = true
		}
	}
	ids := make([]core.RegionID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
