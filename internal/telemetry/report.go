package telemetry

import (
	"fmt"
	"html/template"
	"io"
	"strings"

	"warden/internal/stats"
)

// RunReport bundles everything the HTML report renders for one observed run.
type RunReport struct {
	Benchmark string
	Protocol  string
	Size      string // human label ("small", "n=100000", ...)
	Machine   string // topology name
	Cycles    uint64
	Counters  stats.Counters
	Capture   *Capture
}

// Label names the run in headings.
func (r *RunReport) Label() string { return r.Benchmark + " · " + r.Protocol }

// sparkline renders a series as an inline SVG polyline with a max-value
// caption. Deterministic output: coordinates are formatted with fixed
// precision.
func sparkline(series []uint64) template.HTML {
	const w, h = 260, 42
	var max uint64
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if len(series) == 0 || max == 0 {
		return template.HTML(`<span class="flat">no activity</span>`)
	}
	var pts strings.Builder
	n := len(series)
	for i, v := range series {
		x := 2.0
		if n > 1 {
			x = 2 + float64(i)*(w-4)/float64(n-1)
		}
		y := 2 + (h-4)*(1-float64(v)/float64(max))
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
	}
	svg := fmt.Sprintf(
		`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" preserveAspectRatio="none">`+
			`<polyline fill="none" stroke="#2563eb" stroke-width="1.5" points="%s"/></svg>`+
			`<span class="sparkmax">max %d</span>`,
		w, h, w, h, pts.String(), max)
	return template.HTML(svg)
}

// reportSeries is one named sparkline row.
type reportSeries struct {
	Name  string
	Spark template.HTML
}

// reportRun is the template-facing view of one run.
type reportRun struct {
	*RunReport
	IPC        float64
	InvDownPKI float64
	Series     []reportSeries
	Phases     []*PhaseStats
	Hot        []*BucketStats
	Windows    int
	WindowCyc  uint64
	LateDrops  uint64
	Evicted    uint64
}

// reportPair is the optional WARDen-vs-baseline comparison header.
type reportPair struct {
	Base, Other *RunReport
	Speedup     float64
	InvDownCut  float64 // fraction of (inv+downg) removed, 0..1
	MsgCut      float64
}

func buildRun(r *RunReport) *reportRun {
	rr := &reportRun{
		RunReport:  r,
		IPC:        r.Counters.IPC(r.Cycles),
		InvDownPKI: r.Counters.InvDowngradesPerKiloInstr(),
	}
	if c := r.Capture; c != nil {
		ws := c.Windows
		rr.Windows = len(ws.Live())
		rr.WindowCyc = ws.WindowCycles
		rr.LateDrops = ws.LateDrops
		rr.Evicted = ws.EvictedWindows
		for _, s := range []struct {
			name string
			f    func(*WinCounters) uint64
		}{
			{"instructions", func(w *WinCounters) uint64 { return w.Instructions }},
			{"transactions", func(w *WinCounters) uint64 { return w.Transactions }},
			{"invalidations", func(w *WinCounters) uint64 { return w.Invalidations }},
			{"downgrades", func(w *WinCounters) uint64 { return w.Downgrades }},
			{"messages", func(w *WinCounters) uint64 { return w.Msgs }},
			{"DRAM accesses", func(w *WinCounters) uint64 { return w.DRAMAccesses }},
			{"WARD accesses", func(w *WinCounters) uint64 { return w.WardAccesses }},
			{"reconciles", func(w *WinCounters) uint64 { return w.Reconciles }},
		} {
			rr.Series = append(rr.Series, reportSeries{Name: s.name, Spark: sparkline(ws.Series(s.f))})
		}
		rr.Phases = c.Phases.Table()
		rr.Hot = c.Heat.Hottest(20)
	}
	return rr
}

// cut returns the fraction of base removed by other (negative if other grew).
func cut(base, other uint64) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(other)/float64(base)
}

// reportCSS is the shared stylesheet of every HTML artifact (run reports,
// the attribution explainer, the observability section).
const reportCSS = `
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #111; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; } h3 { font-size: 1rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #d4d4d8; padding: .25rem .6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead th { background: #f4f4f5; }
.spark { vertical-align: middle; background: #f8fafc; border: 1px solid #e4e4e7; }
.sparkmax { color: #71717a; font-size: .8rem; margin-left: .5rem; }
.flat { color: #a1a1aa; font-size: .85rem; }
.good { color: #15803d; } .bad { color: #b91c1c; }
.meta { color: #52525b; font-size: .85rem; }
`

var reportTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"f2":  func(v float64) string { return fmt.Sprintf("%.2f", v) },
	"pct": func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) },
	"hex": func(v uint64) string { return fmt.Sprintf("%#x", v) },
}).Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>` + reportCSS + `</style></head><body>
<h1>{{.Title}}</h1>
{{with .Pair}}
<h2>WARDen vs {{.Base.Protocol}}</h2>
<table><thead><tr><th></th><th>{{.Base.Protocol}}</th><th>{{.Other.Protocol}}</th><th>change</th></tr></thead>
<tbody>
<tr><td>cycles</td><td>{{.Base.Cycles}}</td><td>{{.Other.Cycles}}</td>
    <td class="{{if ge .Speedup 1.0}}good{{else}}bad{{end}}">{{f2 .Speedup}}× speedup</td></tr>
<tr><td>invalidations + downgrades</td>
    <td>{{.BaseInvDown}}</td><td>{{.OtherInvDown}}</td>
    <td class="{{if ge .InvDownCut 0.0}}good{{else}}bad{{end}}">{{pct .InvDownCut}} removed</td></tr>
<tr><td>coherence messages</td>
    <td>{{.BaseMsgs}}</td><td>{{.OtherMsgs}}</td>
    <td class="{{if ge .MsgCut 0.0}}good{{else}}bad{{end}}">{{pct .MsgCut}} removed</td></tr>
</tbody></table>
{{end}}
{{range .Runs}}
<h2>{{.Label}}</h2>
<p class="meta">machine {{.Machine}}{{with .Size}} · size {{.}}{{end}} ·
{{.Cycles}} cycles · IPC {{f2 .IPC}} · {{f2 .InvDownPKI}} inv+downg per kilo-instruction
{{if .Capture}} · {{.Windows}} windows of {{.WindowCyc}} cycles
{{if .Evicted}} · {{.Evicted}} evicted{{end}}{{if .LateDrops}} · {{.LateDrops}} late drops{{end}}{{end}}</p>
{{if .Series}}
<h3>Activity over time</h3>
<table><tbody>
{{range .Series}}<tr><td>{{.Name}}</td><td>{{.Spark}}</td></tr>
{{end}}</tbody></table>
{{end}}
{{if .Phases}}
<h3>Phases</h3>
<table><thead><tr><th>phase</th><th>opens</th><th>span cycles</th><th>instr</th><th>loads</th><th>stores</th><th>inv</th><th>downg</th><th>msgs</th><th>WARD</th></tr></thead>
<tbody>
{{range .Phases}}<tr><td>{{.Name}}</td><td>{{.Opens}}</td><td>{{.Cycles}}</td><td>{{.Ctrs.Instructions}}</td><td>{{.Ctrs.Loads}}</td><td>{{.Ctrs.Stores}}</td><td>{{.Ctrs.Invalidations}}</td><td>{{.Ctrs.Downgrades}}</td><td>{{.Ctrs.Msgs}}</td><td>{{.Ctrs.WardAccesses}}</td></tr>
{{end}}</tbody></table>
{{end}}
{{if .Hot}}
<h3>Hottest address buckets</h3>
<table><thead><tr><th>bucket</th><th>txns</th><th>inv</th><th>downg</th><th>ping-pongs</th><th>max sharers</th><th>WARD txns</th><th>reconciles</th></tr></thead>
<tbody>
{{range .Hot}}<tr><td>{{hex .Base}}</td><td>{{.Transactions}}</td><td>{{.Invalidations}}</td><td>{{.Downgrades}}</td><td>{{.PingPongs}}</td><td>{{.MaxSharers}}</td><td>{{.WardTxns}}</td><td>{{.Reconciles}}</td></tr>
{{end}}</tbody></table>
{{end}}
{{end}}
</body></html>
`))

// pairView extends reportPair with the aggregate numbers the template shows.
type pairView struct {
	reportPair
	BaseInvDown, OtherInvDown uint64
	BaseMsgs, OtherMsgs       uint64
}

// WriteHTML renders a self-contained static report for the given runs. With
// exactly two runs the first is treated as the baseline and a comparison
// header is added. The document embeds everything inline (styles, SVG), so
// it can be attached to CI artifacts and opened anywhere.
func WriteHTML(w io.Writer, title string, runs []*RunReport) error {
	data := struct {
		Title string
		Pair  *pairView
		Runs  []*reportRun
	}{Title: title}
	if len(runs) == 2 && runs[1].Cycles > 0 {
		base, other := runs[0], runs[1]
		data.Pair = &pairView{
			reportPair: reportPair{
				Base:       base,
				Other:      other,
				Speedup:    float64(base.Cycles) / float64(other.Cycles),
				InvDownCut: cut(base.Counters.Invalidations+base.Counters.Downgrades, other.Counters.Invalidations+other.Counters.Downgrades),
				MsgCut:     cut(base.Counters.TotalMsgs(), other.Counters.TotalMsgs()),
			},
			BaseInvDown:  base.Counters.Invalidations + base.Counters.Downgrades,
			OtherInvDown: other.Counters.Invalidations + other.Counters.Downgrades,
			BaseMsgs:     base.Counters.TotalMsgs(),
			OtherMsgs:    other.Counters.TotalMsgs(),
		}
	}
	for _, r := range runs {
		data.Runs = append(data.Runs, buildRun(r))
	}
	return reportTmpl.Execute(w, data)
}
