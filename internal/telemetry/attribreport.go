package telemetry

// HTML rendering for the attribution explainer (wardenlens) and for
// host-observability snapshots (wardenreport -metrics): both reuse the
// run report's styling so every HTML artifact in the repo reads the same.

import (
	"fmt"
	"html/template"
	"io"

	"warden/internal/attrib"
)

// AttribSection is one benchmark's explained protocol delta.
type AttribSection struct {
	Benchmark string
	Ex        *attrib.Explanation
	TopN      int // buckets to show
}

// attribView adapts a section for the template.
type attribView struct {
	AttribSection
	Speedup float64 // baseline cycles / subject cycles
	Kinds   []attrib.Delta
	Phases  []attrib.Delta
	Buckets []attrib.Delta
}

var attribTmpl = template.Must(template.New("attrib").Funcs(template.FuncMap{
	"f2":     func(v float64) string { return fmt.Sprintf("%.2f", v) },
	"bucket": attrib.BucketLabel,
	"signed": func(v int64) string { return fmt.Sprintf("%+d", v) },
}).Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>` + reportCSS + `</style></head><body>
<h1>{{.Title}}</h1>
<p class="meta">Exact cycle-delta decomposition: every table's delta column sums to the
headline delta with zero residue (critical-path attribution, see DESIGN.md §14).</p>
{{range .Sections}}
<h2>{{.Benchmark}}: {{.Ex.SubjectName}} vs {{.Ex.BaselineName}}</h2>
<p class="meta">{{.Ex.SubjectName}} {{.Ex.SubjectCycles}} cycles (critical thread {{.Ex.SubjectThread}}) ·
{{.Ex.BaselineName}} {{.Ex.BaselineCycles}} cycles (critical thread {{.Ex.BaselineThread}}) ·
delta <span class="{{if le .Ex.CycleDelta 0}}good{{else}}bad{{end}}">{{signed .Ex.CycleDelta}}</span> ·
{{f2 .Speedup}}× speedup</p>
<h3>By event kind</h3>
<table><thead><tr><th>kind</th><th>{{.Ex.SubjectName}}</th><th>{{.Ex.BaselineName}}</th><th>delta</th></tr></thead><tbody>
{{range .Kinds}}<tr><td>{{.Kind}}</td><td>{{.Subject}}</td><td>{{.Baseline}}</td><td class="{{if le .Delta 0}}good{{else}}bad{{end}}">{{signed .Delta}}</td></tr>
{{end}}</tbody></table>
<h3>By phase</h3>
<table><thead><tr><th>phase</th><th>{{.Ex.SubjectName}}</th><th>{{.Ex.BaselineName}}</th><th>delta</th></tr></thead><tbody>
{{range .Phases}}<tr><td>{{.Phase}}</td><td>{{.Subject}}</td><td>{{.Baseline}}</td><td class="{{if le .Delta 0}}good{{else}}bad{{end}}">{{signed .Delta}}</td></tr>
{{end}}</tbody></table>
{{if .Buckets}}
<h3>Top {{.TopN}} address buckets</h3>
<table><thead><tr><th>bucket</th><th>{{.Ex.SubjectName}}</th><th>{{.Ex.BaselineName}}</th><th>delta</th></tr></thead><tbody>
{{range .Buckets}}<tr><td>{{bucket .Bucket}}</td><td>{{.Subject}}</td><td>{{.Baseline}}</td><td class="{{if le .Delta 0}}good{{else}}bad{{end}}">{{signed .Delta}}</td></tr>
{{end}}</tbody></table>
{{end}}
{{end}}
</body></html>
`))

// WriteAttribHTML renders the explainer's HTML artifact: one section per
// benchmark, each table an exact partition of that benchmark's cycle
// delta. Self-contained like WriteHTML.
func WriteAttribHTML(w io.Writer, title string, sections []AttribSection) error {
	data := struct {
		Title    string
		Sections []attribView
	}{Title: title}
	for _, s := range sections {
		sp := 0.0
		if s.Ex.SubjectCycles > 0 {
			sp = float64(s.Ex.BaselineCycles) / float64(s.Ex.SubjectCycles)
		}
		data.Sections = append(data.Sections, attribView{
			AttribSection: s,
			Speedup:       sp,
			Kinds:         s.Ex.TopKinds(),
			Phases:        s.Ex.TopPhases(),
			Buckets:       s.Ex.TopBuckets(s.TopN),
		})
	}
	return attribTmpl.Execute(w, data)
}
