package telemetry

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"warden/internal/span"
	"warden/internal/trace"
)

// fleetSpans models a small traced sweep: a coordinator job with two units
// (overlapping in time, so they need separate lanes), one attempt nested in
// each unit, and a worker-side execute span with PDES epoch children.
func fleetSpans() []span.Span {
	mk := func(id, parent, name, track string, start, end int64) span.Span {
		return span.Span{
			TraceID: "00000000000000010000000000000002",
			SpanID:  id, Parent: parent, Name: name, Track: track,
			StartUS: start, EndUS: end,
		}
	}
	return []span.Span{
		mk("0000000000000001", "", "job", "coordinator", 100, 900),
		mk("0000000000000002", "0000000000000001", "unit", "coordinator", 110, 500),
		mk("0000000000000003", "0000000000000001", "unit", "coordinator", 120, 600),
		mk("0000000000000004", "0000000000000002", "attempt", "coordinator", 115, 490),
		mk("0000000000000005", "0000000000000004", "execute", "worker-1", 130, 480),
		mk("0000000000000006", "0000000000000005", "pdes-phase2", "worker-1", 140, 200),
		mk("0000000000000007", "0000000000000005", "pdes-phase2", "worker-1", 210, 300),
	}
}

func TestWriteSpansValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, fleetSpans()); err != nil {
		t.Fatal(err)
	}
	st, err := ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported spans fail validation: %v\n%s", err, buf.Bytes())
	}
	if st.Slices != 7 {
		t.Fatalf("slices = %d, want 7\n%s", st.Slices, buf.Bytes())
	}
	if st.Instants != 0 || st.PhasePairs != 0 {
		t.Fatalf("span export must be X-only, got %d instants, %d B/E pairs", st.Instants, st.PhasePairs)
	}
	out := buf.String()
	// Overlapping sibling units land on separate coordinator lanes; the
	// nested attempt rides its parent's lane, so exactly one extra lane.
	if !strings.Contains(out, `"name":"coordinator"`) || !strings.Contains(out, `"name":"coordinator #1"`) {
		t.Fatalf("expected coordinator lanes 0 and 1:\n%s", out)
	}
	if strings.Contains(out, `"coordinator #2"`) {
		t.Fatalf("attempt span opened a third lane:\n%s", out)
	}
	if !strings.Contains(out, `"name":"worker-1"`) {
		t.Fatalf("missing worker track:\n%s", out)
	}
	// Timestamps are normalized to the earliest span.
	if !strings.Contains(out, `"ts":0`) {
		t.Fatalf("expected a ts-0 event after normalization:\n%s", out)
	}
}

func TestWriteSpansDeterministic(t *testing.T) {
	spans := fleetSpans()
	var a, b bytes.Buffer
	if err := WriteSpans(&a, spans); err != nil {
		t.Fatal(err)
	}
	// Reversed input order must produce identical bytes.
	rev := make([]span.Span, len(spans))
	for i, s := range spans {
		rev[len(spans)-1-i] = s
	}
	if err := WriteSpans(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("output depends on input order:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

func TestWriteSpansEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePerfetto(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty span set fails validation: %v", err)
	}
}

// TestGzipTraceRoundTrip proves the wardenreport -validate path is gzip
// transparent: a compressed trace validates byte-identically to the plain
// one through trace.Reader's magic-byte sniffing.
func TestGzipTraceRoundTrip(t *testing.T) {
	var plain bytes.Buffer
	if err := WriteSpans(&plain, fleetSpans()); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.Reader(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ValidatePerfetto(r)
	if err != nil {
		t.Fatalf("gzip trace fails validation: %v", err)
	}
	if st.Slices != 7 {
		t.Fatalf("gzip round trip lost slices: got %d, want 7", st.Slices)
	}
}
