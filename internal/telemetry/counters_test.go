package telemetry

import (
	"bytes"
	"testing"

	"warden/internal/attrib"
)

// TestWriteCounterTrace renders two attribution counter tracks and checks
// the document against the same structural validator every other trace in
// the repo must satisfy.
func TestWriteCounterTrace(t *testing.T) {
	mk := func(cycles ...uint64) []attrib.Sample {
		out := make([]attrib.Sample, 0, len(cycles))
		for i, c := range cycles {
			out = append(out, attrib.Sample{
				Cycle:   c,
				ByKind:  map[string]uint64{"load": c / 2, "compute": c / 4},
				Untimed: uint64(i+1) * 10,
			})
		}
		return out
	}
	var buf bytes.Buffer
	err := WriteCounterTrace(&buf, "lens test", []CounterTrack{
		{Name: "warden", TID: 0, Samples: mk(100, 200, 300)},
		{Name: "mesi", TID: 1, Samples: mk(120, 240)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidatePerfetto: %v\ntrace:\n%s", err, buf.String())
	}
	if st.Counters != 5 {
		t.Fatalf("Counters = %d, want 5", st.Counters)
	}
	// Deterministic output: same input, same bytes.
	var again bytes.Buffer
	if err := WriteCounterTrace(&again, "lens test", []CounterTrack{
		{Name: "warden", TID: 0, Samples: mk(100, 200, 300)},
		{Name: "mesi", TID: 1, Samples: mk(120, 240)},
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("counter trace output is not deterministic")
	}
}
