package obs

// CacheStats is the minimal view of a memoizing cache that the metrics
// plane exports: lookup hit/miss counters plus the live entry count. It is
// the obs-side mirror of runner.MemoStats (the bench runner's in-process
// simulation memo) and of the fleet coordinator's content-addressed result
// cache, so local and distributed cache behaviour share one metrics
// surface and one family shape.
type CacheStats struct {
	Hits    uint64 // lookups satisfied by an existing entry
	Misses  uint64 // lookups that missed and had to compute (or enqueue)
	Entries int    // distinct keys currently cached
}

// CacheFamilies renders one cache's stats as the canonical three-family
// Prometheus surface: <prefix>_hits_total, <prefix>_misses_total, and
// <prefix>_entries. subject names the cache in HELP text ("Simulation
// memo", "Fleet result cache", ...). Every cache exported through obs uses
// this helper, so dashboards can treat warden_memo_* and
// warden_fleet_cache_* as the same family shape under different prefixes.
func CacheFamilies(prefix, subject string, s CacheStats) []Family {
	return []Family{
		Counter(prefix+"_hits_total",
			subject+" lookups satisfied by an existing entry.", float64(s.Hits)),
		Counter(prefix+"_misses_total",
			subject+" lookups that missed and had to compute.", float64(s.Misses)),
		Gauge(prefix+"_entries",
			"Distinct "+subject+" entries cached.", float64(s.Entries)),
	}
}
