package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestLingerInterruptible proves a cancelled context cuts the lingering
// window short: a one-hour linger under an already-cancelled context must
// return immediately, and an uncancelled one must wait out its duration.
func TestLingerInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Linger(ctx, time.Hour)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled linger took %v", d)
	}

	start = time.Now()
	Linger(context.Background(), 10*time.Millisecond)
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("linger returned after %v, want >= 10ms", d)
	}

	// Non-positive durations return immediately without arming a timer.
	Linger(context.Background(), 0)
	Linger(context.Background(), -time.Second)
}

// TestDrainCompletesInflight proves Drain lets an in-flight request finish
// within the deadline instead of cutting its connection.
func TestDrainCompletesInflight(t *testing.T) {
	release := make(chan struct{})
	inHandler := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		io.WriteString(w, "done")
	})
	ts := httptest.NewUnstartedServer(mux)
	ts.Start()
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var body string
	var reqErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/slow")
		if err != nil {
			reqErr = err
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
	}()

	<-inHandler
	drained := make(chan error, 1)
	go func() { drained <- Drain(ts.Config, 10*time.Second, nil) }()
	// Shutdown is now waiting on the in-flight request; releasing the
	// handler must let both the response and the drain complete.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if reqErr != nil {
		t.Fatalf("in-flight request failed during drain: %v", reqErr)
	}
	if body != "done" {
		t.Fatalf("in-flight request body = %q, want %q", body, "done")
	}
}

// TestDrainForcesCloseOnDeadline proves an over-deadline handler does not
// wedge shutdown: Drain returns the deadline error and force-closes.
func TestDrainForcesCloseOnDeadline(t *testing.T) {
	stuck := make(chan struct{})
	inHandler := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-stuck
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer close(stuck)

	go http.Get(ts.URL + "/stuck") //nolint:errcheck — the forced close fails it by design
	<-inHandler
	if err := Drain(ts.Config, 10*time.Millisecond, nil); err == nil {
		t.Fatal("drain of a stuck handler returned nil, want deadline error")
	}
}

// TestCacheFamiliesShape pins the shared cache metrics surface: three
// families under the given prefix with the hit/miss/entry values.
func TestCacheFamiliesShape(t *testing.T) {
	fams := CacheFamilies("warden_fleet_cache", "Fleet result cache",
		CacheStats{Hits: 7, Misses: 3, Entries: 5})
	want := map[string]float64{
		"warden_fleet_cache_hits_total":   7,
		"warden_fleet_cache_misses_total": 3,
		"warden_fleet_cache_entries":      5,
	}
	if len(fams) != len(want) {
		t.Fatalf("got %d families, want %d", len(fams), len(want))
	}
	for _, f := range fams {
		v, ok := want[f.Name]
		if !ok {
			t.Fatalf("unexpected family %q", f.Name)
		}
		if len(f.Metrics) != 1 || f.Metrics[0].Value != v {
			t.Fatalf("family %q = %+v, want single sample %v", f.Name, f.Metrics, v)
		}
	}
}
