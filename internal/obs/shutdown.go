package obs

import (
	"context"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a copy of parent that is cancelled on SIGINT or
// SIGTERM (or when parent is cancelled). The returned stop function
// releases the signal registration; after the first signal cancels the
// context, stop restores default delivery so a second signal terminates a
// process that fails to drain.
//
// CLIs use it two ways: long-running services (the fleet coordinator and
// workers) wrap their whole run in it, while wardenbench/wardensim install
// it only around -serve-linger so a Ctrl-C during the lingering window
// cuts the wait short instead of killing the process with connections
// mid-flight.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Linger blocks until d elapses or ctx is cancelled, whichever comes
// first — the interruptible replacement for time.Sleep in -serve-linger.
// A non-positive d returns immediately.
func Linger(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Drain gracefully shuts down hs: in-flight requests get up to deadline to
// complete (http.Server.Shutdown), after which remaining connections are
// force-closed so the process always exits. log, if non-nil, records a
// forced close.
func Drain(hs *http.Server, deadline time.Duration, log *slog.Logger) error {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	err := hs.Shutdown(ctx)
	if err != nil {
		if log != nil {
			log.Warn("drain deadline exceeded; closing remaining connections", "deadline", deadline, "err", err)
		}
		hs.Close()
	}
	return err
}
