package obs

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	h.Observe(0.05)                    // first bucket
	h.Observe(0.5)                     // second
	h.Observe(0.5)                     // second
	h.Observe(100)                     // overflow (+Inf only)
	h.ObserveDuration(2 * time.Second) // third

	out := render(t, []Family{h.Family("warden_span_seconds", "Span durations.",
		Label{Name: "name", Value: "unit"})})
	want := "# HELP warden_span_seconds Span durations.\n" +
		"# TYPE warden_span_seconds histogram\n" +
		"warden_span_seconds_bucket{le=\"0.1\",name=\"unit\"} 1\n" +
		"warden_span_seconds_bucket{le=\"1\",name=\"unit\"} 3\n" +
		"warden_span_seconds_bucket{le=\"10\",name=\"unit\"} 4\n" +
		"warden_span_seconds_bucket{le=\"+Inf\",name=\"unit\"} 5\n" +
		"warden_span_seconds_sum{name=\"unit\"} 103.05\n" +
		"warden_span_seconds_count{name=\"unit\"} 5\n"
	if out != want {
		t.Fatalf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1) // le="1" is inclusive, like Prometheus
	out := render(t, []Family{h.Family("warden_h", "")})
	if want := "warden_h_bucket{le=\"1\"} 1\n"; !strings.Contains(out, want) {
		t.Fatalf("boundary observation missing from first bucket:\n%s", out)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.002)
	f := h.Family("warden_h", "")
	// len(DefDurationBuckets) buckets + +Inf + _sum + _count samples.
	if want := len(DefDurationBuckets) + 3; len(f.Metrics) != want {
		t.Fatalf("family has %d samples, want %d", len(f.Metrics), want)
	}
}

func TestMetricSuffixAndSeqDoNotDisturbPlainFamilies(t *testing.T) {
	// A plain family (zero Suffix/Seq) must render exactly as before the
	// histogram extension: sorted purely by label block.
	out := render(t, []Family{{Name: "warden_plain", Type: "gauge", Metrics: []Metric{
		{Labels: []Label{{Name: "x", Value: "b"}}, Value: 2},
		{Labels: []Label{{Name: "x", Value: "a"}}, Value: 1},
	}}})
	want := "# TYPE warden_plain gauge\n" +
		"warden_plain{x=\"a\"} 1\n" +
		"warden_plain{x=\"b\"} 2\n"
	if out != want {
		t.Fatalf("plain family ordering changed:\ngot:\n%s\nwant:\n%s", out, want)
	}
}
