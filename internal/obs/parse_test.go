package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseTextRoundTrip is the strong parser guarantee: render a mixed
// set of families (gauges, counters, a histogram, cache stats, escaped
// label values) with WriteFamilies, parse the text back, render again —
// the two documents must be byte-identical.
func TestParseTextRoundTrip(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(5)
	fams := []Family{
		Gauge("warden_fleet_workers", "Registered workers.", 3),
		Counter("warden_fleet_units_total", "Units.", 42,
			Label{Name: "state", Value: "done"}),
		Counter("weird_label_total", "Escapes: \\ and \n here.", 1,
			Label{Name: "path", Value: `a"b\c` + "\nd"}),
		h.Family("warden_fleet_span_seconds_execute", "Execute span durations."),
	}
	fams = append(fams, CacheFamilies("warden_fleet_cache", "Fleet result cache",
		CacheStats{Hits: 10, Misses: 2, Entries: 8})...)

	var first bytes.Buffer
	if err := WriteFamilies(&first, fams); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ParseText: %v\ninput:\n%s", err, first.String())
	}
	var second bytes.Buffer
	if err := WriteFamilies(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
}

func TestParseTextHistogramShape(t *testing.T) {
	h := NewHistogram(0.01, 0.1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	var buf bytes.Buffer
	if err := WriteFamilies(&buf, []Family{h.Family("warden_fleet_span_seconds_x", "x")}); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hs := HistogramFamilies(fams, "warden_fleet_span_seconds_")
	if len(hs) != 1 {
		t.Fatalf("got %d histogram families, want 1: %+v", len(hs), fams)
	}
	var buckets, sums, counts int
	for _, m := range hs[0].Metrics {
		switch m.Suffix {
		case "_bucket":
			buckets++
			if LabelValue(m, "le") == "" {
				t.Errorf("bucket sample missing le label: %+v", m)
			}
		case "_sum":
			sums++
			if m.Value < 0.104 || m.Value > 0.106 {
				t.Errorf("sum = %v, want 0.105", m.Value)
			}
		case "_count":
			counts++
			if m.Value != 3 {
				t.Errorf("count = %v, want 3", m.Value)
			}
		}
	}
	if buckets != 3 || sums != 1 || counts != 1 { // 2 bounds + +Inf
		t.Fatalf("shape: %d buckets, %d sums, %d counts", buckets, sums, counts)
	}
}

func TestCacheStatsFrom(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFamilies(&buf, CacheFamilies("warden_memo", "Memo",
		CacheStats{Hits: 7, Misses: 3, Entries: 5})); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := CacheStatsFrom(fams, "warden_memo")
	if !ok || s.Hits != 7 || s.Misses != 3 || s.Entries != 5 {
		t.Fatalf("CacheStatsFrom = %+v, %v", s, ok)
	}
	if _, ok := CacheStatsFrom(fams, "warden_fleet_cache"); ok {
		t.Fatal("found stats for absent prefix")
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	if _, err := ParseText(strings.NewReader(`metric{a="unterminated 1`)); err == nil {
		t.Fatal("unterminated label value accepted")
	}
	if _, err := ParseText(strings.NewReader("metric notanumber\n")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}
