package obs

import (
	"sync"
	"time"
)

// DefDurationBuckets are the default histogram bounds for span and
// request durations, in seconds: wide enough to cover a cache-hit unit
// (microseconds) through a multi-minute sweep.
var DefDurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// sense: Observe records one value, Family renders the
// _bucket/_sum/_count series. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // per-bucket (non-cumulative), len(bounds)+1 with overflow last
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (DefDurationBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefDurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Family renders the histogram as one Prometheus histogram family:
// cumulative le buckets (with the implicit +Inf), then _sum and _count.
// The labels are applied to every sample.
func (h *Histogram) Family(name, help string, labels ...Label) Family {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := Family{Name: name, Help: help, Type: "histogram"}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		f.Metrics = append(f.Metrics, Metric{
			Suffix: "_bucket",
			Seq:    i + 1,
			Labels: append(append([]Label(nil), labels...), Label{Name: "le", Value: formatValue(b)}),
			Value:  float64(cum),
		})
	}
	f.Metrics = append(f.Metrics,
		Metric{
			Suffix: "_bucket",
			Seq:    len(h.bounds) + 1,
			Labels: append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"}),
			Value:  float64(h.n),
		},
		Metric{Suffix: "_sum", Seq: len(h.bounds) + 2, Labels: labels, Value: h.sum},
		Metric{Suffix: "_count", Seq: len(h.bounds) + 3, Labels: labels, Value: float64(h.n)},
	)
	return f
}
