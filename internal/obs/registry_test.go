package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fixedClock steps one second per call, starting at a fixed instant, so
// registry timestamps and durations are deterministic in tests.
func fixedClock() func() time.Time {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n-1) * time.Second)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	r.SetClock(fixedClock())

	a := r.NewRun("experiment", "fig7", map[string]string{"size": "small"})
	b := r.NewRun("simulation", "primes/MESI", nil)
	if a.ID() != 1 || b.ID() != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a.ID(), b.ID())
	}

	infos := r.Runs()
	if len(infos) != 2 {
		t.Fatalf("Runs() len = %d", len(infos))
	}
	if infos[0].State != "queued" || infos[1].State != "queued" {
		t.Fatalf("fresh runs not queued: %+v", infos)
	}

	a.Start()
	b.Start()
	b.Finish(1234, nil)
	a.Finish(0, errors.New("boom"))

	got, ok := r.Get(2)
	if !ok {
		t.Fatal("Get(2) missing")
	}
	if got.State != "done" || got.Cycles != 1234 {
		t.Fatalf("run 2 = %+v", got)
	}
	if got.WallSeconds <= 0 {
		t.Fatalf("run 2 wall = %v", got.WallSeconds)
	}
	got, _ = r.Get(1)
	if got.State != "failed" || got.Error != "boom" {
		t.Fatalf("run 1 = %+v", got)
	}
	if _, ok := r.Get(0); ok {
		t.Fatal("Get(0) should miss")
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("Get(3) should miss")
	}
}

func TestRegistryArtifactsAndCounters(t *testing.T) {
	r := NewRegistry()
	run := r.NewRun("simulation", "x", nil)
	run.Start()
	run.AddArtifact("telemetry/x.windows.csv")
	run.AddArtifact("traces/x.trace.json")
	run.SetCounter("invalidations", 7)
	run.SetCounter("downgrades", 3)
	run.Finish(10, nil)

	info, _ := r.Get(run.ID())
	if len(info.Artifacts) != 2 || info.Artifacts[0] != "telemetry/x.windows.csv" {
		t.Fatalf("artifacts = %v", info.Artifacts)
	}
	if info.Counters["invalidations"] != 7 || info.Counters["downgrades"] != 3 {
		t.Fatalf("counters = %v", info.Counters)
	}

	// Finished-run counters aggregate into warden_machine_*_total.
	var found bool
	for _, f := range r.MetricFamilies() {
		if f.Name == "warden_machine_invalidations_total" {
			found = true
			if f.Metrics[0].Value != 7 {
				t.Fatalf("aggregated invalidations = %v", f.Metrics[0].Value)
			}
		}
	}
	if !found {
		t.Fatal("warden_machine_invalidations_total missing")
	}
}

// TestRegistryConcurrent exercises the registry the way a parallel sweep
// does: many pool workers registering, mutating, and finishing runs while
// a reader goroutine snapshots continuously. Run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 25

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Runs()
			r.MetricFamilies()
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				run := r.NewRun("simulation", "conc", nil)
				run.Start()
				run.AddArtifact("a.csv")
				run.SetCounter("ops", 1)
				run.Finish(uint64(i), nil)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	infos := r.Runs()
	if len(infos) != workers*perWorker {
		t.Fatalf("run count = %d, want %d", len(infos), workers*perWorker)
	}
	seen := make(map[int]bool)
	for _, info := range infos {
		if seen[info.ID] {
			t.Fatalf("duplicate run id %d", info.ID)
		}
		seen[info.ID] = true
		if info.State != "done" {
			t.Fatalf("run %d state %s", info.ID, info.State)
		}
	}
}
