package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenServer builds a server over fully deterministic state: a stepped
// clock, a fixed probe, a fixed memo source, and runtime metrics off.
func goldenServer() *Server {
	reg := NewRegistry()
	reg.SetClock(fixedClock())

	exp := reg.NewRun("experiment", "fig8", map[string]string{"size": "small"})
	exp.Start()

	sim := reg.NewRun("simulation", "primes/MESI/2xXeonGold6126", map[string]string{
		"benchmark": "primes", "protocol": "MESI",
	})
	sim.Start()
	sim.AddArtifact("telemetry/primes_mesi.windows.csv")
	sim.SetCounter("invalidations", 42)
	sim.SetCounter("instructions", 10000)
	sim.Finish(123456, nil)

	reg.NewRun("simulation", "dedup/WARDen/2xXeonGold6126", nil) // stays queued

	return &Server{
		Registry: reg,
		Probe:    func() (uint64, uint64) { return 987654, 4321 },
		Sources: []Source{SourceFunc(func() []Family {
			return []Family{
				Counter("warden_memo_hits_total", "Memo cache hits.", 7),
				Counter("warden_memo_misses_total", "Memo cache misses.", 4),
			}
		})},
		DisableRuntimeMetrics: true,
	}
}

// TestMetricsGoldenScrape locks down the full exposition of a small run:
// family ordering, HELP/TYPE lines, label rendering, and values.
func TestMetricsGoldenScrape(t *testing.T) {
	srv := httptest.NewServer(goldenServer().Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	golden := filepath.Join("testdata", "scrape.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Fatalf("scrape diverged from golden (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}
}

func TestRunsEndpoints(t *testing.T) {
	srv := httptest.NewServer(goldenServer().Handler())
	defer srv.Close()

	var runs []RunInfo
	resp, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(runs) != 3 {
		t.Fatalf("/runs returned %d runs", len(runs))
	}
	if runs[0].Kind != "experiment" || runs[0].State != "running" {
		t.Fatalf("run[0] = %+v", runs[0])
	}

	var one RunInfo
	resp, err = http.Get(srv.URL + "/runs/2")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if one.State != "done" || one.Cycles != 123456 {
		t.Fatalf("/runs/2 = %+v", one)
	}
	if len(one.Artifacts) != 1 || one.Artifacts[0] != "telemetry/primes_mesi.windows.csv" {
		t.Fatalf("/runs/2 artifacts = %v", one.Artifacts)
	}

	for path, want := range map[string]int{
		"/runs/99":      http.StatusNotFound,
		"/runs/abc":     http.StatusBadRequest,
		"/healthz":      http.StatusOK,
		"/debug/pprof/": http.StatusOK,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestMetricsIncludesRuntimeFamilies checks the non-golden (live) scrape
// carries Go runtime stats and probe counters.
func TestMetricsIncludesRuntimeFamilies(t *testing.T) {
	s := goldenServer()
	s.DisableRuntimeMetrics = false
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"go_goroutines", "go_mem_heap_alloc_bytes", "go_gc_cycles_total",
		"warden_sim_thread_cycles_total", "warden_sim_ops_total",
		"warden_runs{state=\"done\"}", "process_uptime_seconds",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("scrape missing %q", fam)
		}
	}
}
