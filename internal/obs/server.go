package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Server exposes the observability plane over HTTP:
//
//	/metrics        Prometheus text exposition (registry + probe + sources
//	                + Go runtime stats)
//	/runs           JSON list of registered runs
//	/runs/{id}      JSON detail of one run, including artifact paths
//	/healthz        liveness probe, always 200 once serving
//	/debug/pprof/*  net/http/pprof profiles
//
// Every handler reads host-side state only (atomics and mutex-guarded
// aggregates); nothing it does can reach simulated state, which is how a
// scraped run stays byte-identical to an unobserved one.
type Server struct {
	// Registry, if non-nil, backs /runs and the warden_run* families.
	Registry *Registry
	// Probe, if non-nil, is sampled per scrape for live simulation
	// progress (cumulative thread-cycles and executed ops). It is the
	// read side of engine.Probe.
	Probe func() (cycles, ops uint64)
	// Sources contribute additional metric families (e.g. the bench
	// runner's memo-cache stats).
	Sources []Source
	// Log, if non-nil, receives one Debug record per request.
	Log *slog.Logger
	// DisableRuntimeMetrics omits the go_* families — used by golden
	// tests, where runtime stats are nondeterministic.
	DisableRuntimeMetrics bool

	start time.Time
}

// Families gathers every metric family for one scrape.
func (s *Server) Families() []Family {
	var fams []Family
	if s.Probe != nil {
		cycles, ops := s.Probe()
		fams = append(fams,
			Counter("warden_sim_thread_cycles_total",
				"Cumulative simulated thread-cycles executed by all live and finished machines.",
				float64(cycles)),
			Counter("warden_sim_ops_total",
				"Simulated operations (loads, stores, atomics, compute, fences, region ops) executed.",
				float64(ops)))
	}
	if s.Registry != nil {
		fams = append(fams, s.Registry.MetricFamilies()...)
	}
	for _, src := range s.Sources {
		fams = append(fams, src.MetricFamilies()...)
	}
	if !s.DisableRuntimeMetrics {
		fams = append(fams, runtimeFamilies()...)
		if !s.start.IsZero() {
			fams = append(fams, Gauge("process_uptime_seconds",
				"Seconds since the observability server started.",
				time.Since(s.start).Seconds()))
		}
	}
	return fams
}

// runtimeFamilies samples the Go runtime. ReadMemStats briefly
// stop-the-worlds the host process; that pauses host goroutines, never
// simulated time, so it is scrape-visible overhead only.
func runtimeFamilies() []Family {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []Family{
		Gauge("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine())),
		Gauge("go_gomaxprocs", "GOMAXPROCS host-parallelism bound.", float64(runtime.GOMAXPROCS(0))),
		Gauge("go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)),
		Gauge("go_mem_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(ms.HeapSys)),
		Counter("go_mem_total_alloc_bytes", "Cumulative bytes allocated for heap objects.", float64(ms.TotalAlloc)),
		Counter("go_mem_mallocs_total", "Cumulative count of heap allocations.", float64(ms.Mallocs)),
		Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC)),
		Counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9),
	}
}

// Handler returns the server's mux. Safe to call once; the returned
// handler is safe for concurrent requests.
func (s *Server) Handler() http.Handler {
	if s.start.IsZero() {
		s.start = time.Now()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/runs/", s.handleRun)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.logged(mux)
}

// logged wraps next with per-request Debug logging when a logger is set.
func (s *Server) logged(next http.Handler) http.Handler {
	if s.Log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.Log.Debug("http request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.code, "duration", time.Since(start))
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteFamilies(w, s.Families()); err != nil && s.Log != nil {
		s.Log.Warn("metrics write failed", "err", err)
	}
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	var runs []RunInfo
	if s.Registry != nil {
		runs = s.Registry.Runs()
	}
	if runs == nil {
		runs = []RunInfo{}
	}
	writeJSON(w, runs)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/runs/")
	idStr, wantBlocks := strings.CutSuffix(idStr, "/blocks")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return
	}
	if s.Registry == nil {
		http.NotFound(w, r)
		return
	}
	if wantBlocks {
		blocks, ok := s.Registry.Blocks(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		if blocks == nil {
			blocks = []struct{}{}
		}
		writeJSON(w, blocks)
		return
	}
	info, ok := s.Registry.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, info)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
