package obs

// ParseText is the read side of WriteFamilies: a parser for the Prometheus
// text exposition format (version 0.0.4), turning a scrape back into
// []Family so reports can render a coordinator's /metrics — histogram
// buckets, cache counters — without a Prometheus dependency. It accepts
// exactly what WriteFamilies emits plus the usual format freedoms (any
// HELP/TYPE order, untyped samples with no metadata).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// histSuffixes are the sample-name suffixes a histogram family emits under
// one TYPE line.
var histSuffixes = []string{"_bucket", "_sum", "_count"}

// ParseText parses a text-format scrape into families, in order of first
// appearance. Histogram samples (name_bucket/_sum/_count under a TYPE
// histogram declaration) are folded into their family with Metric.Suffix
// set, mirroring how Histogram.Family renders them.
func ParseText(r io.Reader) ([]Family, error) {
	byName := make(map[string]*Family)
	var order []string
	family := func(name string) *Family {
		f := byName[name]
		if f == nil {
			f = &Family{Name: name}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				f := family(fields[2])
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				if fields[1] == "HELP" {
					f.Help = unescapeHelp(rest)
				} else {
					f.Type = rest
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", lineno, err)
		}
		fam, suffix := resolveFamily(byName, name)
		f := family(fam)
		f.Metrics = append(f.Metrics, Metric{Labels: labels, Value: value, Suffix: suffix, Seq: len(f.Metrics)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: parse: %w", err)
	}
	out := make([]Family, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out, nil
}

// unescapeHelp reverses escapeHelp.
func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			if s[i] == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// resolveFamily maps a sample name onto its declared family: exact match
// first, then the histogram suffixes against a TYPE histogram family.
func resolveFamily(byName map[string]*Family, name string) (family, suffix string) {
	if f, ok := byName[name]; ok && f.Type != "" {
		return name, ""
	}
	for _, s := range histSuffixes {
		base, ok := strings.CutSuffix(name, s)
		if !ok {
			continue
		}
		if f, exists := byName[base]; exists && f.Type == "histogram" {
			return base, s
		}
	}
	return name, ""
}

// parseSample splits one sample line into name, labels, and value.
func parseSample(line string) (string, []Label, float64, error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd < 0 {
		return "", nil, 0, fmt.Errorf("no value in %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	var labels []Label
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%q: %w", line, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, 0, fmt.Errorf("no value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("%q: %w", line, err)
	}
	return name, labels, v, nil
}

// parseLabels consumes `a="x",b="y"}` (the opening brace already eaten)
// and returns the labels plus the remainder of the line.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " \t,")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		val, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		labels = append(labels, Label{Name: name, Value: val})
		s = rest
	}
}

// parseQuoted consumes a label value up to its closing quote, handling the
// exposition-format escapes (\\, \", \n).
func parseQuoted(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("trailing backslash")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// parseValue parses a sample value, accepting the spelled-out specials.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return inf(1), nil
	case "-Inf":
		return inf(-1), nil
	case "NaN":
		return nan(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func inf(sign int) float64 {
	v := 0.0
	if sign > 0 {
		return 1 / v
	}
	return -1 / v
}

func nan() float64 {
	v := 0.0
	return v / v
}

// FindFamily returns the first parsed family with the given name.
func FindFamily(fams []Family, name string) (Family, bool) {
	for _, f := range fams {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// LabelValue returns the value of the named label on m ("" if absent).
func LabelValue(m Metric, name string) string {
	for _, l := range m.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// HistogramFamilies returns the parsed histogram families whose name has
// the given prefix, sorted by name.
func HistogramFamilies(fams []Family, prefix string) []Family {
	var out []Family
	for _, f := range fams {
		if f.Type == "histogram" && strings.HasPrefix(f.Name, prefix) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CacheStatsFrom reassembles a CacheStats from the three families
// CacheFamilies(prefix, ...) emits. ok is false when none are present.
func CacheStatsFrom(fams []Family, prefix string) (CacheStats, bool) {
	var s CacheStats
	found := false
	read := func(name string) uint64 {
		f, ok := FindFamily(fams, name)
		if !ok || len(f.Metrics) == 0 {
			return 0
		}
		found = true
		return uint64(f.Metrics[0].Value)
	}
	s.Hits = read(prefix + "_hits_total")
	s.Misses = read(prefix + "_misses_total")
	s.Entries = int(read(prefix + "_entries"))
	return s, found
}
