package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// RunState is the lifecycle of a registered run.
type RunState int

const (
	// Queued: registered but not yet executing (e.g. an experiment step
	// waiting its turn, or a simulation waiting for a pool slot).
	Queued RunState = iota
	// Running: currently executing.
	Running
	// Done: finished successfully.
	Done
	// Failed: finished with an error.
	Failed
)

var runStateNames = [...]string{"queued", "running", "done", "failed"}

// String returns the lowercase state name used in JSON and metric labels.
func (s RunState) String() string {
	if s < 0 || int(s) >= len(runStateNames) {
		return "unknown"
	}
	return runStateNames[s]
}

// Registry tracks the runs of one process: experiment steps registered by
// the CLIs and individual simulations registered by the bench runner. It
// is safe for concurrent use — pool workers update it while the serving
// goroutine reads it — and it is host-side only, so registering runs never
// touches simulated state.
type Registry struct {
	mu   sync.Mutex
	runs []*Run
	now  func() time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{now: time.Now}
}

// SetClock overrides the registry's wall clock (tests and golden scrapes).
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Run is one tracked unit of work. All mutation goes through its methods;
// fields are snapshotted for readers via Info.
type Run struct {
	reg *Registry

	id     int
	kind   string // "experiment" or "simulation"
	name   string
	labels map[string]string

	state              RunState
	queued, start, end time.Time
	cycles             uint64
	err                string
	artifacts          []string
	counters           map[string]uint64
	blocks             any
}

// NewRun registers a run in state Queued. kind groups runs in reports
// ("experiment" for CLI steps, "simulation" for individual machine runs);
// labels are carried verbatim into /runs JSON and /metrics label sets.
func (r *Registry) NewRun(kind, name string, labels map[string]string) *Run {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	run := &Run{
		reg:    r,
		id:     len(r.runs) + 1,
		kind:   kind,
		name:   name,
		labels: cp,
		state:  Queued,
		queued: r.now(),
	}
	r.runs = append(r.runs, run)
	return run
}

// ID returns the run's registry-unique id (dense, starting at 1).
func (run *Run) ID() int { return run.id }

// Start moves the run to Running and stamps its start time.
func (run *Run) Start() {
	run.reg.mu.Lock()
	defer run.reg.mu.Unlock()
	run.state = Running
	run.start = run.reg.now()
}

// Finish moves the run to Done (err == nil) or Failed, recording its
// simulated cycles and wall-clock end.
func (run *Run) Finish(cycles uint64, err error) {
	run.reg.mu.Lock()
	defer run.reg.mu.Unlock()
	run.end = run.reg.now()
	if run.start.IsZero() {
		run.start = run.end
	}
	run.cycles = cycles
	if err != nil {
		run.state = Failed
		run.err = err.Error()
	} else {
		run.state = Done
	}
}

// AddArtifact records a file path the run produced (telemetry dump, trace,
// report). Paths should be stable relative paths (runner.Artifacts
// relativizes against its root) so /runs/{id} listings are portable.
func (run *Run) AddArtifact(path string) {
	run.reg.mu.Lock()
	defer run.reg.mu.Unlock()
	run.artifacts = append(run.artifacts, path)
}

// SetCounter records one named architectural counter for the run (e.g.
// "invalidations"). Counters aggregate into warden_machine_*_total metric
// families across finished runs.
func (run *Run) SetCounter(name string, v uint64) {
	run.reg.mu.Lock()
	defer run.reg.mu.Unlock()
	if run.counters == nil {
		run.counters = make(map[string]uint64)
	}
	run.counters[name] = v
}

// SetBlocks attaches the run's per-block flight-recorder summaries (an
// already-JSON-marshalable value, e.g. []attrib.BlockSummary), served
// verbatim at /runs/{id}/blocks. Stored as an opaque value so obs stays
// dependency-free; the producer owns the schema.
func (run *Run) SetBlocks(v any) {
	run.reg.mu.Lock()
	defer run.reg.mu.Unlock()
	run.blocks = v
}

// Blocks returns the value attached via SetBlocks for run id. ok reports
// whether the run exists; a nil value means no flight data was attached.
func (r *Registry) Blocks(id int) (v any, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 1 || id > len(r.runs) {
		return nil, false
	}
	return r.runs[id-1].blocks, true
}

// RunInfo is the JSON view of a run served by /runs and /runs/{id}.
type RunInfo struct {
	ID          int               `json:"id"`
	Kind        string            `json:"kind"`
	Name        string            `json:"name"`
	State       string            `json:"state"`
	Labels      map[string]string `json:"labels,omitempty"`
	QueuedAt    string            `json:"queued_at,omitempty"`
	StartedAt   string            `json:"started_at,omitempty"`
	FinishedAt  string            `json:"finished_at,omitempty"`
	WallSeconds float64           `json:"wall_seconds"`
	Cycles      uint64            `json:"cycles"`
	Error       string            `json:"error,omitempty"`
	Artifacts   []string          `json:"artifacts,omitempty"`
	Counters    map[string]uint64 `json:"counters,omitempty"`
}

// infoLocked snapshots the run; callers hold the registry lock.
func (run *Run) infoLocked(now time.Time) RunInfo {
	info := RunInfo{
		ID:     run.id,
		Kind:   run.kind,
		Name:   run.name,
		State:  run.state.String(),
		Cycles: run.cycles,
		Error:  run.err,
	}
	if len(run.labels) > 0 {
		info.Labels = make(map[string]string, len(run.labels))
		for k, v := range run.labels {
			info.Labels[k] = v
		}
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	info.QueuedAt = stamp(run.queued)
	info.StartedAt = stamp(run.start)
	info.FinishedAt = stamp(run.end)
	switch run.state {
	case Running:
		info.WallSeconds = now.Sub(run.start).Seconds()
	case Done, Failed:
		info.WallSeconds = run.end.Sub(run.start).Seconds()
	}
	info.Artifacts = append([]string(nil), run.artifacts...)
	if len(run.counters) > 0 {
		info.Counters = make(map[string]uint64, len(run.counters))
		for k, v := range run.counters {
			info.Counters[k] = v
		}
	}
	return info
}

// Runs returns every run's snapshot ordered by id.
func (r *Registry) Runs() []RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]RunInfo, len(r.runs))
	for i, run := range r.runs {
		out[i] = run.infoLocked(now)
	}
	return out
}

// Get returns the snapshot of one run by id.
func (r *Registry) Get(id int) (RunInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 1 || id > len(r.runs) {
		return RunInfo{}, false
	}
	return r.runs[id-1].infoLocked(r.now()), true
}

// MetricFamilies renders the registry's /metrics view: run counts by
// state, per-run state gauges, total finished wall-clock and simulated
// cycles, and the aggregated machine counters of finished runs.
func (r *Registry) MetricFamilies() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()

	byState := make(map[RunState]int)
	var wall float64
	var cycles uint64
	agg := make(map[string]uint64)
	perRun := Family{
		Name: "warden_run",
		Help: "Per-run state: one sample per registered run, value is 1.",
		Type: "gauge",
	}
	for _, run := range r.runs {
		byState[run.state]++
		if run.state == Done || run.state == Failed {
			wall += run.end.Sub(run.start).Seconds()
			cycles += run.cycles
			for k, v := range run.counters {
				agg[k] += v
			}
		}
		perRun.Metrics = append(perRun.Metrics, Metric{
			Labels: []Label{
				{Name: "id", Value: strconv.Itoa(run.id)},
				{Name: "kind", Value: run.kind},
				{Name: "name", Value: run.name},
				{Name: "state", Value: run.state.String()},
			},
			Value: 1,
		})
	}

	states := Family{
		Name: "warden_runs",
		Help: "Number of registered runs by state.",
		Type: "gauge",
	}
	for s := Queued; s <= Failed; s++ {
		states.Metrics = append(states.Metrics, Metric{
			Labels: []Label{{Name: "state", Value: s.String()}},
			Value:  float64(byState[s]),
		})
	}

	fams := []Family{
		states,
		Counter("warden_run_wall_seconds_total",
			"Total wall-clock seconds spent in finished runs.", wall),
		Counter("warden_run_cycles_total",
			"Total simulated cycles reported by finished runs.", float64(cycles)),
	}
	if len(perRun.Metrics) > 0 {
		fams = append(fams, perRun)
	}
	names := make([]string, 0, len(agg))
	for k := range agg {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fams = append(fams, Counter(
			"warden_machine_"+SanitizeName(k)+"_total",
			"Aggregated machine counter over finished runs.",
			float64(agg[k])))
	}
	return fams
}
