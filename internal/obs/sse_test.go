package obs

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestEventLogReplayAndLiveFollow(t *testing.T) {
	l := NewEventLog()
	l.Publish("unit", map[string]string{"state": "leased"})
	l.Publish("unit", map[string]string{"state": "done"})

	ts := httptest.NewServer(http.HandlerFunc(l.ServeSSE))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish two more after the subscriber connected, then close.
	go func() {
		time.Sleep(10 * time.Millisecond)
		l.Publish("job", map[string]int{"done": 2})
		l.Close()
	}()

	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	got := strings.Join(lines, "\n")
	want := "id: 1\nevent: unit\ndata: {\"state\":\"leased\"}\n\n" +
		"id: 2\nevent: unit\ndata: {\"state\":\"done\"}\n\n" +
		"id: 3\nevent: job\ndata: {\"done\":2}\n"
	if got != want {
		t.Fatalf("stream mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
	// The stream terminated because Close ended it (we got here without a
	// client-side timeout) — the late events arrived live, the early ones
	// by replay.
}

func TestEventLogLateSubscriberGetsFullReplay(t *testing.T) {
	l := NewEventLog()
	for i := 1; i <= 5; i++ {
		l.Publish("unit", map[string]int{"n": i})
	}
	l.Close()

	ts := httptest.NewServer(http.HandlerFunc(l.ServeSSE))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	ids := 0
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "id: ") {
			ids++
			want := fmt.Sprintf("id: %d", ids)
			if sc.Text() != want {
				t.Fatalf("event id line %q, want %q (replay must be in publish order)", sc.Text(), want)
			}
		}
	}
	if ids != 5 {
		t.Fatalf("replayed %d events, want 5", ids)
	}
}

func TestEventLogClosedDropsPublishes(t *testing.T) {
	l := NewEventLog()
	l.Publish("a", 1)
	l.Close()
	l.Publish("b", 2)
	l.Close() // idempotent
	if l.Len() != 1 {
		t.Fatalf("closed log accepted a publish: %d events", l.Len())
	}
	evs := l.Events()
	if len(evs) != 1 || evs[0].Type != "a" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestEventLogNilIsInert(t *testing.T) {
	var l *EventLog
	l.Publish("x", 1)
	l.Close()
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log must stay empty")
	}
	rec := httptest.NewRecorder()
	l.ServeSSE(rec, httptest.NewRequest(http.MethodGet, "/events", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil log ServeSSE status = %d, want 404", rec.Code)
	}
}

func TestEventLogSubscriberCancelDoesNotBlockPublish(t *testing.T) {
	l := NewEventLog()
	ts := httptest.NewServer(http.HandlerFunc(l.ServeSSE))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close() // client walks away immediately
	for i := 0; i < 100; i++ {
		l.Publish("unit", i) // must never block on the dead subscriber
	}
	l.Close()
	if l.Len() != 100 {
		t.Fatalf("published %d events, want 100", l.Len())
	}
}
