package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// StreamEvent is one entry in an EventLog: a monotonically increasing id,
// an event type, and a single-line JSON payload — exactly the fields the
// Server-Sent Events wire format carries (`id:`, `event:`, `data:`).
type StreamEvent struct {
	ID   int             `json:"id"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// EventLog is an append-only, replayable event stream with SSE fan-out:
// every subscriber — no matter how late — sees the full event history in
// order, then follows live appends until the log is closed. The log is
// the streaming side of one fleet job: the coordinator publishes unit
// state transitions and span completions into it, and Close at job
// settlement ends every subscriber's stream cleanly (the client reads
// EOF and knows the job can produce no further events).
//
// Publishing is wait-free with respect to subscribers: appends never
// block on a slow consumer, because consumers pull from the shared slice
// at their own pace and wait on a broadcast channel for more. A nil
// *EventLog is inert (publishes drop, ServeSSE 404s), so callers don't
// guard call sites.
type EventLog struct {
	mu     sync.Mutex
	events []StreamEvent
	wake   chan struct{} // closed and replaced on every append; stays closed after Close
	closed bool
}

// NewEventLog builds an empty open log.
func NewEventLog() *EventLog {
	return &EventLog{wake: make(chan struct{})}
}

// Publish appends one event, JSON-encoding v as its payload, and wakes
// every waiting subscriber. Publishing to a nil or closed log is a no-op
// (a settled job cannot produce further events).
func (l *EventLog) Publish(typ string, v any) {
	if l == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"marshal_error":%q}`, err.Error()))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, StreamEvent{ID: len(l.events) + 1, Type: typ, Data: data})
	close(l.wake)
	l.wake = make(chan struct{})
}

// Close ends the stream: subscribers drain what remains and return. A
// closed log drops further publishes. Safe to call more than once.
func (l *EventLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake) // left closed: all future waits return immediately
}

// Len returns the number of published events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a snapshot of the log.
func (l *EventLog) Events() []StreamEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]StreamEvent(nil), l.events...)
}

// snapshot returns the events at or past next, the wait channel for
// more, and whether the log is closed.
func (l *EventLog) snapshot(next int) ([]StreamEvent, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events[next:], l.wake, l.closed
}

// ServeSSE streams the log as text/event-stream: full replay from event
// 1, then live events, returning when the log closes or the client goes
// away. It requires an http.Flusher response writer.
func (l *EventLog) ServeSSE(w http.ResponseWriter, r *http.Request) {
	if l == nil {
		http.NotFound(w, r)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	next := 0
	for {
		evs, wake, closed := l.snapshot(next)
		for _, ev := range evs {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data); err != nil {
				return // client gone
			}
		}
		if len(evs) > 0 {
			flusher.Flush()
			next += len(evs)
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
