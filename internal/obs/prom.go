// Package obs is the live observability plane: a dependency-free
// Prometheus text-format exposition writer, a registry of experiment and
// simulation runs, and an HTTP server that exposes both (plus pprof and Go
// runtime stats) from a running wardenbench/wardensim process.
//
// The plane is strictly read-only with respect to the simulation: metric
// sources are either host-side aggregates updated outside the simulated
// hot path or lock-free atomic probes (engine.Probe), so serving a scrape
// while a sweep is running cannot change a single simulated cycle — the
// bench tests assert byte-identical reports under continuous scraping.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a metric.
type Label struct {
	Name  string
	Value string
}

// Metric is one sample: a label set and a value. The family supplies the
// metric name.
type Metric struct {
	Labels []Label
	Value  float64
	// Suffix, when non-empty, is appended to the family name to form the
	// sample name — how a histogram family emits its _bucket/_sum/_count
	// series under one TYPE line.
	Suffix string
	// Seq orders samples within a family ahead of the label-block sort:
	// lower Seq renders first. Histograms use it to keep buckets in
	// ascending-le order with _sum and _count last; the zero value keeps
	// plain families in pure label order.
	Seq int
}

// Family is a named group of samples sharing HELP and TYPE metadata, the
// unit of Prometheus exposition.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "untyped", ...
	Metrics []Metric
}

// Source supplies metric families for a scrape. Implementations must be
// safe for concurrent use: scrapes arrive on the serving goroutine while
// the process is doing its real work.
type Source interface {
	MetricFamilies() []Family
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() []Family

// MetricFamilies calls f.
func (f SourceFunc) MetricFamilies() []Family { return f() }

// Gauge is a convenience constructor for a single-sample gauge family.
func Gauge(name, help string, v float64, labels ...Label) Family {
	return Family{Name: name, Help: help, Type: "gauge",
		Metrics: []Metric{{Labels: labels, Value: v}}}
}

// Counter is a convenience constructor for a single-sample counter family.
func Counter(name, help string, v float64, labels ...Label) Family {
	return Family{Name: name, Help: help, Type: "counter",
		Metrics: []Metric{{Labels: labels, Value: v}}}
}

// SanitizeName maps s onto the Prometheus metric-name alphabet
// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid byte becomes '_', and a leading
// digit gets a '_' prefix. Empty input yields "_".
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// SanitizeLabelName is SanitizeName restricted to the label-name alphabet,
// which excludes ':'.
func SanitizeLabelName(s string) string {
	return strings.ReplaceAll(SanitizeName(s), ":", "_")
}

// escapeHelp escapes a HELP string: backslash and newline, per the text
// exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, double-quote, newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case v != v: // NaN
		return "NaN"
	case v > 0 && v*2 == v: // +Inf
		return "+Inf"
	case v < 0 && v*2 == v: // -Inf
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a sorted, escaped {a="x",b="y"} block, or "" for an
// empty label set. Label names are sanitized; duplicate names keep their
// first occurrence.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, 0, len(labels))
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		n := SanitizeLabelName(l.Name)
		if seen[n] {
			continue
		}
		seen[n] = true
		ls = append(ls, Label{Name: n, Value: l.Value})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteFamilies renders families in the Prometheus text exposition format
// (version 0.0.4). Output is fully deterministic: families are sorted by
// (sanitized) name, samples within a family by their rendered label block,
// and families with identical names are merged (first HELP/TYPE wins) so a
// scrape never repeats a TYPE line, which Prometheus rejects.
func WriteFamilies(w io.Writer, families []Family) error {
	merged := make(map[string]*Family)
	names := make([]string, 0, len(families))
	for _, f := range families {
		name := SanitizeName(f.Name)
		m, ok := merged[name]
		if !ok {
			cp := f
			cp.Name = name
			cp.Metrics = append([]Metric(nil), f.Metrics...)
			merged[name] = &cp
			names = append(names, name)
			continue
		}
		m.Metrics = append(m.Metrics, f.Metrics...)
	}
	sort.Strings(names)
	for _, name := range names {
		f := merged[name]
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		type sample struct {
			suffix string
			seq    int
			labels string
			value  float64
		}
		samples := make([]sample, len(f.Metrics))
		for i, m := range f.Metrics {
			samples[i] = sample{m.Suffix, m.Seq, renderLabels(m.Labels), m.Value}
		}
		sort.SliceStable(samples, func(i, j int) bool {
			if samples[i].seq != samples[j].seq {
				return samples[i].seq < samples[j].seq
			}
			return samples[i].labels < samples[j].labels
		})
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", name, s.suffix, s.labels, formatValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}
