package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the CLIs' structured logger: text handler on w at the
// given level. An invalid level is an error so CLIs can exit 2 before
// doing any work.
func NewLogger(w io.Writer, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})), nil
}
