package obs

import (
	"strings"
	"testing"
)

func render(t *testing.T, fams []Family) string {
	t.Helper()
	var b strings.Builder
	if err := WriteFamilies(&b, fams); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWriteFamiliesHelpTypeAndEscaping(t *testing.T) {
	out := render(t, []Family{{
		Name: "warden_test_total",
		Help: "line one\nline two with backslash \\",
		Type: "counter",
		Metrics: []Metric{{
			Labels: []Label{{Name: "path", Value: `a\b"c` + "\n"}},
			Value:  3,
		}},
	}})
	want := "# HELP warden_test_total line one\\nline two with backslash \\\\\n" +
		"# TYPE warden_test_total counter\n" +
		"warden_test_total{path=\"a\\\\b\\\"c\\n\"} 3\n"
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestWriteFamiliesSanitizesNames(t *testing.T) {
	out := render(t, []Family{{
		Name:    "9bad name-with.dots",
		Metrics: []Metric{{Labels: []Label{{Name: "bad-label.name", Value: "v"}}, Value: 1}},
	}})
	if !strings.Contains(out, "_9bad_name_with_dots{bad_label_name=\"v\"} 1\n") {
		t.Fatalf("names not sanitized:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE _9bad_name_with_dots untyped\n") {
		t.Fatalf("missing untyped TYPE default:\n%s", out)
	}
}

func TestWriteFamiliesDeterministicOrdering(t *testing.T) {
	fams := []Family{
		Gauge("warden_z", "", 1),
		{Name: "warden_a", Type: "gauge", Metrics: []Metric{
			{Labels: []Label{{Name: "x", Value: "2"}}, Value: 2},
			{Labels: []Label{{Name: "x", Value: "1"}}, Value: 1},
		}},
		Gauge("warden_m", "", 5),
	}
	first := render(t, fams)
	// Families sorted by name, samples by label block.
	wantOrder := []string{
		"# TYPE warden_a gauge",
		`warden_a{x="1"} 1`,
		`warden_a{x="2"} 2`,
		"# TYPE warden_m gauge",
		"warden_m 5",
		"# TYPE warden_z gauge",
		"warden_z 1",
	}
	pos := -1
	for _, line := range wantOrder {
		i := strings.Index(first, line)
		if i < 0 {
			t.Fatalf("missing line %q in:\n%s", line, first)
		}
		if i < pos {
			t.Fatalf("line %q out of order in:\n%s", line, first)
		}
		pos = i
	}
	// Reversing the input changes nothing.
	rev := render(t, []Family{fams[2], fams[1], fams[0]})
	if first != rev {
		t.Fatalf("ordering depends on input order:\n%s\nvs\n%s", first, rev)
	}
}

func TestWriteFamiliesMergesDuplicateNames(t *testing.T) {
	out := render(t, []Family{
		Counter("warden_dup_total", "first help", 1, Label{Name: "a", Value: "1"}),
		Counter("warden_dup_total", "second help", 2, Label{Name: "a", Value: "2"}),
	})
	if got := strings.Count(out, "# TYPE warden_dup_total"); got != 1 {
		t.Fatalf("TYPE line emitted %d times:\n%s", got, out)
	}
	if !strings.Contains(out, `warden_dup_total{a="1"} 1`) ||
		!strings.Contains(out, `warden_dup_total{a="2"} 2`) {
		t.Fatalf("samples lost in merge:\n%s", out)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	cases := map[float64]string{1: "1", 1.5: "1.5", 0: "0"}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	inf := 1.0
	for i := 0; i < 2000; i++ {
		inf *= 2
	}
	if got := formatValue(inf); got != "+Inf" {
		t.Errorf("formatValue(+inf) = %q", got)
	}
	if got := formatValue(-inf); got != "-Inf" {
		t.Errorf("formatValue(-inf) = %q", got)
	}
	if got := formatValue(inf - inf); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
