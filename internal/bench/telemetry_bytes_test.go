package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warden/internal/runner"
	"warden/internal/telemetry"
)

// renderTelemetrySubset runs the primes/dedup comparison matrix on r and renders the
// Figs. 7/8-style report — the same code path `wardenbench -experiment all`
// exercises, at unit-test scale.
func renderTelemetrySubset(t *testing.T, r *Runner) []byte {
	t.Helper()
	comps, err := r.CompareAll(eventsTestConfig(), []string{"primes", "dedup"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	speedupEnergyReport(&buf, "telemetry equivalence subset", comps)
	return buf.Bytes()
}

// TestReportsByteIdenticalWithTelemetry is the PR's acceptance criterion:
// benchmark reports rendered with telemetry artifacts enabled must be
// byte-identical to reports from a plain runner. Artifact side effects — the
// windowed dumps and Perfetto traces — land on disk without touching a
// single measurement.
func TestReportsByteIdenticalWithTelemetry(t *testing.T) {
	plain := renderTelemetrySubset(t, NewRunner(Small))

	dir := t.TempDir()
	var arts runner.Artifacts
	obs := NewRunner(Small)
	obs.SetTelemetry(TelemetryConfig{
		Dir:       filepath.Join(dir, "telemetry"),
		TraceDir:  filepath.Join(dir, "traces"),
		Artifacts: &arts,
	})
	observed := renderTelemetrySubset(t, obs)

	if !bytes.Equal(plain, observed) {
		t.Fatalf("report bytes diverge with telemetry enabled:\n--- plain ---\n%s\n--- telemetry ---\n%s", plain, observed)
	}

	// 2 benchmarks x 2 protocols, each writing 4 dumps + 1 trace.
	if got, want := arts.Len(), 4*5; got != want {
		t.Fatalf("artifact count = %d, want %d:\n%s", got, want, strings.Join(arts.Paths(), "\n"))
	}
	for _, p := range arts.Paths() {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("artifact %s is empty", p)
		}
		if strings.HasSuffix(p, ".trace.json") {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			st, err := telemetry.ValidatePerfetto(f)
			f.Close()
			if err != nil {
				t.Errorf("%s: invalid Perfetto trace: %v", p, err)
			} else if st.PhasePairs == 0 {
				t.Errorf("%s: trace has no phase slices", p)
			}
		}
	}

	// Memoized re-renders must not rewrite (or duplicate) artifacts.
	if again := renderTelemetrySubset(t, obs); !bytes.Equal(plain, again) {
		t.Fatal("memoized re-render diverged")
	}
	if got := arts.Len(); got != 4*5 {
		t.Fatalf("memo hit rewrote artifacts: %d registered", got)
	}
}
