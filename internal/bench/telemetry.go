package bench

// Telemetry integration for the experiment harness: when enabled on a
// Runner, every uncached simulation runs with a telemetry.Capture attached
// and writes its windowed series, phase table, sharing heatmap, and
// (optionally) a Perfetto timeline as per-run artifact files. Attaching the
// capture cannot change any measurement — RunOneObserved's sink sees the run
// without perturbing it (TestTelemetryMatchesUnobserved) — so reports
// rendered from a telemetry-enabled Runner are byte-identical to a plain
// one's (TestReportsByteIdenticalWithTelemetry).

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/obs"
	"warden/internal/runner"
	"warden/internal/topology"
	"warden/internal/trace"
)

// TelemetryConfig enables per-run telemetry artifacts on a Runner.
type TelemetryConfig struct {
	// Dir receives the windowed/phase/heatmap dumps (created if missing).
	// Empty disables telemetry entirely.
	Dir string
	// TraceDir, when non-empty, additionally streams a Chrome
	// trace_event/Perfetto JSON timeline per run into this directory.
	TraceDir string
	// TraceGzip gzip-compresses the timeline files (suffix .trace.json.gz).
	// Readers are magic-byte transparent (trace.Open / wardenreport
	// -validate), so compressed traces replay and validate unchanged.
	TraceGzip bool
	// WindowCycles overrides the sampling window width (0 = default).
	WindowCycles uint64
	// Artifacts, when non-nil, collects every file written.
	Artifacts *runner.Artifacts
}

// SetTelemetry configures per-run telemetry artifacts for all subsequent
// (uncached) simulations. Call before the first experiment: memoized runs
// write artifacts only on their first execution.
func (r *Runner) SetTelemetry(tc TelemetryConfig) { r.tele = tc }

// artifactBase names one run's artifact files: benchmark, protocol, machine,
// and size, plus a short options fingerprint when the runtime options are
// not the paper defaults (ablations would otherwise collide).
func artifactBase(e string, proto core.Protocol, cfg topology.Config, size int, opts hlpl.Options) string {
	base := fmt.Sprintf("%s_%s_%s_%d", e, strings.ToLower(proto.String()), cfg.Name, size)
	if opts != hlpl.DefaultOptions() {
		h := fnv.New32a()
		fmt.Fprintf(h, "%+v", opts)
		base = fmt.Sprintf("%s_o%08x", base, h.Sum32())
	}
	return base
}

// createArtifact creates dir/name, making the directory as needed, and
// registers the path with the shared artifact registry (which may
// relativize it) and, when the simulation is observed, with its run
// record, so /runs/{id} lists what the run wrote. Names ending in ".gz"
// are gzip-compressed on the way out (trace.Create).
func createArtifact(arts *runner.Artifacts, dir, name string, run *obs.Run) (io.WriteCloser, string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", err
	}
	path := filepath.Join(dir, name)
	f, err := trace.Create(path)
	if err != nil {
		return nil, "", err
	}
	stored := path
	if arts != nil {
		stored = arts.Add(path)
	}
	if run != nil {
		run.AddArtifact(stored)
	}
	return f, path, nil
}

// writeArtifact creates dir/name and writes it in one step (the non-
// streaming artifact path).
func writeArtifact(arts *runner.Artifacts, dir, name string, run *obs.Run, write func(io.Writer) error) error {
	f, path, err := createArtifact(arts, dir, name, run)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	return nil
}
