package bench

// Telemetry integration for the experiment harness: when enabled on a
// Runner, every uncached simulation runs with a telemetry.Capture attached
// and writes its windowed series, phase table, sharing heatmap, and
// (optionally) a Perfetto timeline as per-run artifact files. Attaching the
// capture cannot change any measurement — RunOneObserved's sink sees the run
// without perturbing it (TestTelemetryMatchesUnobserved) — so reports
// rendered from a telemetry-enabled Runner are byte-identical to a plain
// one's (TestReportsByteIdenticalWithTelemetry).

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/obs"
	"warden/internal/pbbs"
	"warden/internal/runner"
	"warden/internal/telemetry"
	"warden/internal/topology"
	"warden/internal/trace"
)

// TelemetryConfig enables per-run telemetry artifacts on a Runner.
type TelemetryConfig struct {
	// Dir receives the windowed/phase/heatmap dumps (created if missing).
	// Empty disables telemetry entirely.
	Dir string
	// TraceDir, when non-empty, additionally streams a Chrome
	// trace_event/Perfetto JSON timeline per run into this directory.
	TraceDir string
	// TraceGzip gzip-compresses the timeline files (suffix .trace.json.gz).
	// Readers are magic-byte transparent (trace.Open / wardenreport
	// -validate), so compressed traces replay and validate unchanged.
	TraceGzip bool
	// WindowCycles overrides the sampling window width (0 = default).
	WindowCycles uint64
	// Artifacts, when non-nil, collects every file written.
	Artifacts *runner.Artifacts
}

// SetTelemetry configures per-run telemetry artifacts for all subsequent
// (uncached) simulations. Call before the first experiment: memoized runs
// write artifacts only on their first execution.
func (r *Runner) SetTelemetry(tc TelemetryConfig) { r.tele = tc }

// artifactBase names one run's artifact files: benchmark, protocol, machine,
// and size, plus a short options fingerprint when the runtime options are
// not the paper defaults (ablations would otherwise collide).
func artifactBase(e string, proto core.Protocol, cfg topology.Config, size int, opts hlpl.Options) string {
	base := fmt.Sprintf("%s_%s_%s_%d", e, strings.ToLower(proto.String()), cfg.Name, size)
	if opts != hlpl.DefaultOptions() {
		h := fnv.New32a()
		fmt.Fprintf(h, "%+v", opts)
		base = fmt.Sprintf("%s_o%08x", base, h.Sum32())
	}
	return base
}

// createArtifact creates dir/name, making the directory as needed, and
// registers the path with the shared artifact registry (which may
// relativize it) and, when the simulation is observed, with its run
// record, so /runs/{id} lists what the run wrote. Names ending in ".gz"
// are gzip-compressed on the way out (trace.Create).
func (tc *TelemetryConfig) createArtifact(dir, name string, run *obs.Run) (io.WriteCloser, string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", err
	}
	path := filepath.Join(dir, name)
	f, err := trace.Create(path)
	if err != nil {
		return nil, "", err
	}
	stored := path
	if tc.Artifacts != nil {
		stored = tc.Artifacts.Add(path)
	}
	if run != nil {
		run.AddArtifact(stored)
	}
	return f, path, nil
}

// runTelemetry executes one simulation with the capture attached and writes
// the artifact files. Measurements are identical to RunOne's. run, when
// non-nil, collects the artifact paths for /runs/{id}.
func (r *Runner) runTelemetry(cfg topology.Config, proto core.Protocol, e pbbs.Entry, size int, opts hlpl.Options, run *obs.Run) (Result, error) {
	tc := &r.tele
	base := artifactBase(e.Name, proto, cfg, size, opts)

	tcfg := telemetry.Config{Topology: cfg, WindowCycles: tc.WindowCycles}
	var traceF io.WriteCloser
	if tc.TraceDir != "" {
		name := base + ".trace.json"
		if tc.TraceGzip {
			name += ".gz"
		}
		var err error
		traceF, _, err = tc.createArtifact(tc.TraceDir, name, run)
		if err != nil {
			return Result{}, fmt.Errorf("bench: telemetry trace: %w", err)
		}
		tcfg.Trace = traceF
	}
	cap := telemetry.New(tcfg)
	res, err := runObserved(cfg, proto, e, size, opts, r.Engine,
		func(*machine.Machine) core.Sink { return cap }, r.probe, nil)
	if cerr := cap.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("bench: telemetry trace: %w", cerr)
	}
	if traceF != nil {
		if cerr := traceF.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("bench: telemetry trace: %w", cerr)
		}
	}
	if err != nil {
		return Result{}, err
	}

	for _, art := range []struct {
		name  string
		write func(io.Writer) error
	}{
		{base + ".windows.csv", cap.Windows.WriteCSV},
		{base + ".windows.jsonl", cap.Windows.WriteJSONL},
		{base + ".phases.csv", cap.Phases.WriteCSV},
		{base + ".heatmap.csv", cap.Heat.WriteCSV},
	} {
		f, path, err := tc.createArtifact(tc.Dir, art.name, run)
		if err != nil {
			return Result{}, fmt.Errorf("bench: telemetry: %w", err)
		}
		werr := art.write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return Result{}, fmt.Errorf("bench: telemetry: %s: %w", path, werr)
		}
	}
	return res, nil
}
