package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAblationsRender runs every ablation at Small scale and checks report
// structure and the expected qualitative outcomes.
func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	r := NewRunner(Small)
	if err := Ablations(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"WARD region sources",
		"region table capacity",
		"sector granularity",
		"protocol baselines",
		"full WARDen", "heap pages only", "library scopes only",
		"MOESI", "WARDen",
		"DATA LOSS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
	// Byte sectoring must be reported correct exactly once (the 1 B row).
	if strings.Count(out, "\tcorrect") == 0 && !strings.Contains(out, "correct") {
		t.Fatal("no lossless sectoring row")
	}
}

func TestManySocketsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	r := NewRunner(Small)
	if err := ManySockets(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sockets", "Mean speedup", "1\t", "8\t"} {
		if !strings.Contains(out, strings.ReplaceAll(want, "\t", " ")) && !strings.Contains(out, want) {
			t.Fatalf("many-socket output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "960 cycles") {
		t.Fatalf("8-socket latency row missing:\n%s", out)
	}
}
