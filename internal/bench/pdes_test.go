package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/topology"
	"warden/internal/trace"
)

// observedRun executes one benchmark under the given engine mode with a
// trace recorder attached, returning the measurement and the full textual
// + JSONL trace bytes.
func observedRun(t *testing.T, emode machine.EngineMode, proto core.Protocol, e pbbs.Entry) (Result, []byte, []byte) {
	t.Helper()
	var text, jsonl bytes.Buffer
	res, err := RunOneObservedOn(emode, topology.XeonGold6126(2), proto, e, Small.pick(e), hlpl.DefaultOptions(),
		func(*machine.Machine) core.Sink { return trace.NewRecorder(&text, &jsonl) })
	if err != nil {
		t.Fatalf("%s/%v/%v: %v", e.Name, proto, emode, err)
	}
	return res, text.Bytes(), jsonl.Bytes()
}

// firstDiffLine locates the first line where a and b diverge, for readable
// failure output.
func firstDiffLine(a, b []byte) (int, string, string) {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return i + 1, string(la[i]), string(lb[i])
		}
	}
	return n + 1, fmt.Sprintf("<%d lines>", len(la)), fmt.Sprintf("<%d lines>", len(lb))
}

// TestPDESDifferentialSuite asserts the tentpole guarantee: the PDES
// engine produces byte-identical reports, traces, and counters to the
// sequential engine on every PBBS benchmark under both protocols. The
// trace comparison is the strong form — it covers every event (loads,
// stores, coherence transactions, phase markers) with sequence numbers,
// so any reordering or divergence anywhere in the serialized history
// fails the test. Run under -race with GOMAXPROCS>1 (the CI job sets 4),
// this also proves the PDES engine's concurrency is data-race-free.
func TestPDESDifferentialSuite(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		// Real host parallelism (or at least preemptive interleaving) makes
		// the -race run meaningful even on single-core hosts.
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	for _, e := range pbbs.Suite {
		for _, proto := range core.All() {
			e, proto := e, proto
			t.Run(fmt.Sprintf("%s/%v", e.Name, proto), func(t *testing.T) {
				seqRes, seqText, seqJSONL := observedRun(t, machine.EngineSequential, proto, e)
				pdesRes, pdesText, pdesJSONL := observedRun(t, machine.EnginePDES, proto, e)
				if seqRes != pdesRes {
					t.Errorf("Result diverged:\nseq:  %+v\npdes: %+v", seqRes, pdesRes)
				}
				if !bytes.Equal(seqText, pdesText) {
					line, a, b := firstDiffLine(seqText, pdesText)
					t.Errorf("text trace diverged at line %d:\nseq:  %s\npdes: %s", line, a, b)
				}
				if !bytes.Equal(seqJSONL, pdesJSONL) {
					line, a, b := firstDiffLine(seqJSONL, pdesJSONL)
					t.Errorf("jsonl trace diverged at line %d:\nseq:  %s\npdes: %s", line, a, b)
				}
			})
		}
	}
}

// TestPDESRunnerMatchesSequential covers the harness path end to end: two
// Runners differing only in Engine must render identical comparisons.
func TestPDESRunnerMatchesSequential(t *testing.T) {
	names := []string{"fib", "primes", "dedup"}
	cfg := topology.XeonGold6126(2)
	seq := NewRunner(Small)
	pdes := NewRunner(Small)
	pdes.Engine = machine.EnginePDES
	a, err := seq.CompareAll(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pdes.CompareAll(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: comparison diverged:\nseq:  %+v\npdes: %+v", names[i], a[i], b[i])
		}
	}
}
