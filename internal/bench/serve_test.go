package bench

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"warden/internal/engine"
	"warden/internal/obs"
)

// TestServeScrapeNonPerturbing is the observability plane's acceptance
// criterion: a run scraped continuously over HTTP — /metrics and /runs
// hammered from another goroutine for the whole sweep — must render a
// byte-identical report and identical simulated cycle totals to a bare,
// unobserved run. The plane reads only host-side state (atomics and
// mutex-guarded aggregates), so observation cannot leak into simulated
// results.
func TestServeScrapeNonPerturbing(t *testing.T) {
	bare := NewRunner(Small)
	plain := renderTelemetrySubset(t, bare)
	bareCycles, bareRuns := bare.SimulatedCycles()

	observed := NewRunner(Small)
	probe := &engine.Probe{}
	observed.SetProbe(probe)
	reg := obs.NewRegistry()
	observed.SetObserver(reg)
	srv := &obs.Server{
		Registry: reg,
		Probe:    probe.Sample,
		Sources:  []obs.Source{observed},
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hammer the plane from a separate goroutine for the duration of the
	// sweep. Every response must be a successful scrape, not just ignored.
	var scrapes, failures atomic.Uint64
	stop := make(chan struct{})
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		paths := []string{"/metrics", "/runs", "/healthz"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + paths[i%len(paths)])
			if err != nil {
				failures.Add(1)
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || len(body) == 0 {
				failures.Add(1)
				continue
			}
			scrapes.Add(1)
		}
	}()

	scraped := renderTelemetrySubset(t, observed)
	close(stop)
	<-hammerDone

	if failures.Load() != 0 {
		t.Fatalf("%d scrapes failed during the run", failures.Load())
	}
	if scrapes.Load() == 0 {
		t.Fatal("hammer goroutine never completed a scrape")
	}

	if !bytes.Equal(plain, scraped) {
		t.Fatalf("report bytes diverge under scrape load:\n--- bare ---\n%s\n--- scraped ---\n%s", plain, scraped)
	}
	obsCycles, obsRuns := observed.SimulatedCycles()
	if obsCycles != bareCycles || obsRuns != bareRuns {
		t.Fatalf("simulated totals diverge: bare %d cycles/%d runs, observed %d cycles/%d runs",
			bareCycles, bareRuns, obsCycles, obsRuns)
	}

	// The plane must have seen the real work: the probe's cumulative
	// thread-cycles and the registry's finished runs are live state, not
	// placeholders.
	pc, po := probe.Sample()
	if pc == 0 || po == 0 {
		t.Fatalf("probe saw no work: cycles=%d ops=%d", pc, po)
	}
	infos := reg.Runs()
	if len(infos) != 4 { // 2 benchmarks x 2 protocols
		t.Fatalf("registry has %d runs, want 4", len(infos))
	}
	var total uint64
	for _, ri := range infos {
		if ri.State != "done" {
			t.Fatalf("run %d (%s) state = %q", ri.ID, ri.Name, ri.State)
		}
		if ri.Cycles == 0 {
			t.Fatalf("run %d (%s) recorded zero cycles", ri.ID, ri.Name)
		}
		if ri.Counters["instructions"] == 0 {
			t.Fatalf("run %d (%s) missing machine counters", ri.ID, ri.Name)
		}
		total += ri.Cycles
	}
	if total != bareCycles {
		t.Fatalf("registry cycles sum %d != simulated total %d", total, bareCycles)
	}
}
