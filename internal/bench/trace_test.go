package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"warden/internal/core"
	"warden/internal/engine"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

// TestEpochHookNonPerturbing is the tracing analogue of the obs plane's
// scrape-non-perturbation proof: attaching a PDES epoch hook changes no
// simulated quantity. The hooked PDES run must be byte-identical to both
// the unhooked PDES run and the sequential reference, and the hook's
// event stream must be well-formed (balanced begin/end pairs, phases in
// {1,2}, nondecreasing epochs).
func TestEpochHookNonPerturbing(t *testing.T) {
	cfg := topology.XeonGold6126(2)
	proto, ok := core.Lookup("warden")
	if !ok {
		t.Fatal("warden protocol not registered")
	}
	entry, err := pbbs.ByName("fib")
	if err != nil {
		t.Fatal(err)
	}
	opts := hlpl.DefaultOptions()

	seq, err := RunOne(cfg, proto, entry, entry.Small, opts)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	plain, err := RunOneProbedOn(machine.EnginePDES, cfg, proto, entry, entry.Small, opts, nil)
	if err != nil {
		t.Fatalf("unhooked pdes run: %v", err)
	}

	var events []engine.EpochEvent
	hooked, err := RunOneTracedOn(machine.EnginePDES, cfg, proto, entry, entry.Small, opts, nil,
		func(ev engine.EpochEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("hooked pdes run: %v", err)
	}

	for name, pair := range map[string][2]Result{
		"hooked-vs-sequential":    {hooked, seq},
		"hooked-vs-unhooked-pdes": {hooked, plain},
	} {
		a, _ := json.Marshal(pair[0])
		b, _ := json.Marshal(pair[1])
		if !bytes.Equal(a, b) {
			t.Errorf("%s: results differ\nhooked: %s\nother:  %s", name, a, b)
		}
	}

	if len(events) == 0 {
		t.Fatal("epoch hook never fired under the PDES engine")
	}
	// Every phase open has a matching close with identical coordinates,
	// and epochs never go backwards. Phase 2 fires every epoch; phase 1
	// only when the scheduler found parallel work.
	open := map[[2]int]engine.EpochEvent{}
	lastEpoch := 0
	phase2 := 0
	for i, ev := range events {
		if ev.Phase != 1 && ev.Phase != 2 {
			t.Fatalf("event %d: phase %d", i, ev.Phase)
		}
		if ev.Epoch < lastEpoch {
			t.Fatalf("event %d: epoch went backwards (%d after %d)", i, ev.Epoch, lastEpoch)
		}
		lastEpoch = ev.Epoch
		key := [2]int{ev.Epoch, ev.Phase}
		if ev.Begin {
			if _, dup := open[key]; dup {
				t.Fatalf("event %d: duplicate begin for epoch %d phase %d", i, ev.Epoch, ev.Phase)
			}
			open[key] = ev
			continue
		}
		b, ok := open[key]
		if !ok {
			t.Fatalf("event %d: close without open for epoch %d phase %d", i, ev.Epoch, ev.Phase)
		}
		if b.Clock != ev.Clock || b.Horizon != ev.Horizon {
			t.Fatalf("event %d: close coordinates (%d,%d) differ from open (%d,%d)",
				i, ev.Clock, ev.Horizon, b.Clock, b.Horizon)
		}
		if ev.Horizon <= ev.Clock {
			t.Fatalf("event %d: horizon %d not past epoch base %d", i, ev.Horizon, ev.Clock)
		}
		delete(open, key)
		if ev.Phase == 2 {
			phase2++
		}
	}
	if len(open) != 0 {
		t.Fatalf("%d phase(s) never closed: %v", len(open), open)
	}
	if phase2 == 0 {
		t.Fatal("no phase-2 (serial drain) pairs observed")
	}
}

// TestSequentialEngineNeverFiresEpochHook pins the zero-cost contract:
// under the sequential scheduler the hook must not fire at all.
func TestSequentialEngineNeverFiresEpochHook(t *testing.T) {
	cfg := topology.XeonGold6126(1)
	proto, _ := core.Lookup("mesi")
	entry, err := pbbs.ByName("fib")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	_, err = RunOneTracedOn(machine.EngineSequential, cfg, proto, entry, entry.Small,
		hlpl.DefaultOptions(), nil, func(engine.EpochEvent) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("sequential engine fired the epoch hook %d times", fired)
	}
}
