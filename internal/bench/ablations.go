package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/mem"
	"warden/internal/pbbs"
	"warden/internal/runner"
	"warden/internal/topology"
)

// Ablations runs the design-choice studies listed in DESIGN.md §5 and
// prints their reports. All simulations route through r, so they fan out
// across the host pool and share r's memo with the other figures.
func Ablations(w io.Writer, r *Runner) error {
	if err := AblationWardSources(w, r); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := AblationRegionCapacity(w, r); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := AblationSectorGranularity(w, r); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return AblationBaselines(w, r)
}

// AblationBaselines compares WARDen against a *stronger* legacy baseline
// than the paper uses: MOESI, whose Owned state avoids the writeback on
// dirty sharing and lets owners source data. It answers "how much of
// WARDen's win could a better conventional protocol claw back?"
func AblationBaselines(w io.Writer, r *Runner) error {
	subset := []string{"msort", "suffix-array", "primes", "tokens"}
	cfg := topology.XeonGold6126(2)
	protos := core.Protocols("mesi", "moesi", "warden")
	entries, err := entriesByName(subset)
	if err != nil {
		return err
	}
	// Warm the whole (benchmark × protocol) matrix in parallel, then
	// render from the memo.
	if err := r.warm(len(entries)*len(protos), func(i int) (topology.Config, core.Protocol, pbbs.Entry, hlpl.Options) {
		return cfg, protos[i%len(protos)], entries[i/len(protos)], hlpl.DefaultOptions()
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: protocol baselines (dual socket, speedup vs MESI)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tMOESI\tWARDen")
	for _, e := range entries {
		base, err := r.runWith(cfg, core.MESI, e, r.Sizes.pick(e), hlpl.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s", e.Name)
		for _, p := range core.Protocols("moesi", "warden") {
			res, err := r.runWith(cfg, p, e, r.Sizes.pick(e), hlpl.DefaultOptions())
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%.2fx", float64(base.Cycles)/float64(res.Cycles))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// AblationWardSources decomposes WARDen's speedup into its two region
// sources: leaf-heap page marking (§4.2) and library bulk-operation scopes.
func AblationWardSources(w io.Writer, r *Runner) error {
	subset := []string{"primes", "msort", "palindrome", "tokens"}
	cfg := topology.XeonGold6126(2)
	variants := []struct {
		name string
		opts hlpl.Options
	}{
		{"full WARDen", hlpl.Options{MarkHeapPages: true, MarkScopes: true}},
		{"heap pages only", hlpl.Options{MarkHeapPages: true, MarkScopes: false}},
		{"library scopes only", hlpl.Options{MarkHeapPages: false, MarkScopes: true}},
	}
	entries, err := entriesByName(subset)
	if err != nil {
		return err
	}
	// Per benchmark: the MESI baseline plus the three WARDen variants.
	cells := 1 + len(variants)
	if err := r.warm(len(entries)*cells, func(i int) (topology.Config, core.Protocol, pbbs.Entry, hlpl.Options) {
		e := entries[i/cells]
		if i%cells == 0 {
			return cfg, core.MESI, e, hlpl.DefaultOptions()
		}
		return cfg, core.WARDen, e, variants[i%cells-1].opts
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: WARD region sources (dual-socket speedup vs MESI)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, v := range variants {
		fmt.Fprintf(tw, "\t%s", v.name)
	}
	fmt.Fprintln(tw)
	for _, e := range entries {
		base, err := r.runWith(cfg, core.MESI, e, r.Sizes.pick(e), hlpl.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s", e.Name)
		for _, v := range variants {
			res, err := r.runWith(cfg, core.WARDen, e, r.Sizes.pick(e), v.opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%.2fx", float64(base.Cycles)/float64(res.Cycles))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// AblationRegionCapacity sweeps the directory's WARD region table capacity.
// The paper sizes the CAM at 1024 entries (§6.1); the sweep shows how
// gracefully WARDen degrades to MESI as AddRegion overflows.
func AblationRegionCapacity(w io.Writer, r *Runner) error {
	e, err := pbbs.ByName("msort")
	if err != nil {
		return err
	}
	size := r.Sizes.pick(e)
	capacities := []int{2, 8, 32, 128, 1024}
	capCfg := func(capacity int) topology.Config {
		cfg := topology.XeonGold6126(2)
		cfg.Name = fmt.Sprintf("%s-cap%d", cfg.Name, capacity)
		cfg.WardRegionCapacity = capacity
		return cfg
	}
	if err := r.warm(1+len(capacities), func(i int) (topology.Config, core.Protocol, pbbs.Entry, hlpl.Options) {
		if i == 0 {
			return topology.XeonGold6126(2), core.MESI, e, hlpl.DefaultOptions()
		}
		return capCfg(capacities[i-1]), core.WARDen, e, hlpl.DefaultOptions()
	}); err != nil {
		return err
	}
	base, err := r.runWith(topology.XeonGold6126(2), core.MESI, e, size, hlpl.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: WARD region table capacity (msort, dual socket)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Capacity\tSpeedup vs MESI\tAddRegion overflows")
	for _, capacity := range capacities {
		res, err := r.runWith(capCfg(capacity), core.WARDen, e, size, hlpl.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.2fx\t%d\n", capacity,
			float64(base.Cycles)/float64(res.Cycles), res.Counters.RegionOverflows)
	}
	return tw.Flush()
}

// AblationSectorGranularity demonstrates why reconciliation needs sectored
// caches (§6.1): four cores write interleaved bytes of shared blocks inside
// a WARD region. Byte sectoring reconciles losslessly; coarser sectors make
// false sharing look like true sharing, and last-writer-wins merging then
// corrupts the other writers' bytes.
func AblationSectorGranularity(w io.Writer, r *Runner) error {
	sectors := []uint64{1, 8, 64}
	// The trials bypass RunOne (they inspect memory bytes, not counters)
	// but still fan out over the runner's pool.
	corrupted, err := runner.Map(r.pool, len(sectors), func(i int) (int, error) {
		return sectorGranularityTrial(sectors[i])
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: sector granularity (4 cores writing interleaved bytes in one WARD region)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Sector size\tCorrupted bytes\tVerdict")
	for i, sector := range sectors {
		verdict := "correct"
		if corrupted[i] > 0 {
			verdict = "DATA LOSS (false sharing merged as true sharing)"
		}
		fmt.Fprintf(tw, "%d B\t%d\t%s\n", sector, corrupted[i], verdict)
	}
	fmt.Fprintln(tw, "(byte sectoring costs ~7.9% cache area per the paper's CACTI estimate)")
	return tw.Flush()
}

// entriesByName resolves benchmark names, failing on the first unknown.
func entriesByName(names []string) ([]pbbs.Entry, error) {
	out := make([]pbbs.Entry, 0, len(names))
	for _, n := range names {
		e, err := pbbs.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// sectorGranularityTrial runs the interleaved-writer kernel at one sector
// size and counts bytes whose final value is wrong.
func sectorGranularityTrial(sector uint64) (int, error) {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	m := machine.New(cfg, core.WARDen)
	m.System().SetSectorSize(sector)
	const nBytes = 4096
	buf := m.Mem().Alloc(nBytes, mem.PageSize)

	writers := cfg.Threads()
	bodies := make([]func(*machine.Ctx), writers)
	for tid := 0; tid < writers; tid++ {
		tid := tid
		bodies[tid] = func(ctx *machine.Ctx) {
			var id core.RegionID
			if tid == 0 {
				id, _ = ctx.AddRegion(buf, buf+nBytes)
			}
			// Rendezvous crudely: everyone computes past the region add.
			ctx.Compute(64)
			for i := tid; i < nBytes; i += writers {
				ctx.Store(buf+mem.Addr(i), 1, uint64(100+tid))
			}
			ctx.Fence()
			if tid == 0 {
				ctx.Compute(100_000) // let the other writers finish first
				ctx.RemoveRegion(id)
			}
		}
	}
	if _, err := m.Run(bodies); err != nil {
		return 0, err
	}
	corrupted := 0
	for i := 0; i < nBytes; i++ {
		want := byte(100 + i%writers)
		if m.Mem().ByteAt(buf+mem.Addr(i)) != want {
			corrupted++
		}
	}
	return corrupted, nil
}
