package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"warden/internal/core"
	"warden/internal/pbbs"
	"warden/internal/runner"
	"warden/internal/topology"

	// SiSd registers itself on import. Linking it here puts the third
	// protocol family into every binary built on the bench harness, so
	// registry-driven sweeps (core.All()) — including the PDES
	// differential suite — cover it automatically.
	_ "warden/internal/sisd"
)

// ThreeWay compares the three protocol families — MESI (invalidation
// baseline), WARDen (ward regions), and SiSd (self-invalidation /
// self-downgrade, no sharer tracking for coherence actions) — over the
// full PBBS suite on the dual-socket machine. The MESI and WARDen runs
// share the Figure 8–11 memo matrix; only the SiSd column simulates new
// configurations.
func ThreeWay(w io.Writer, r *Runner) error {
	protos := core.Protocols("mesi", "warden", "sisd")
	cfg := topology.XeonGold6126(2)
	entries := pbbs.Suite
	res, err := runner.Map(r.pool, len(entries)*len(protos), func(i int) (Result, error) {
		return r.run(cfg, protos[i%len(protos)], entries[i/len(protos)])
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "Three-way comparison: MESI vs WARDen vs SiSd on dual socket")
	fmt.Fprintln(w, "(speedups over the MESI baseline; inv+dg = invalidations+downgrades per kilo-instruction)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tWARDen speedup\tSiSd speedup\tMESI inv+dg\tWARDen inv+dg\tSiSd inv+dg")
	var wsp, ssp []float64
	for i, e := range entries {
		mesi, warden, sisd := res[3*i], res[3*i+1], res[3*i+2]
		ws := float64(mesi.Cycles) / float64(warden.Cycles)
		ss := float64(mesi.Cycles) / float64(sisd.Cycles)
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%.2f\t%.2f\t%.2f\n",
			e.Name, ws, ss,
			mesi.Counters.InvDowngradesPerKiloInstr(),
			warden.Counters.InvDowngradesPerKiloInstr(),
			sisd.Counters.InvDowngradesPerKiloInstr())
		wsp = append(wsp, ws)
		ssp = append(ssp, ss)
	}
	fmt.Fprintf(tw, "MEAN\t%.2fx\t%.2fx\t\t\t\n", geomean(wsp), geomean(ssp))
	return tw.Flush()
}
