package bench

import (
	"bytes"
	"strings"
	"testing"

	"warden/internal/topology"
)

// TestFiguresRender runs the whole figure pipeline at Small scale and
// checks each report's structure: every suite benchmark appears, the MEAN
// row is present where the paper charts one, and derived values stay in
// sane ranges. This is the end-to-end test of the harness itself.
func TestFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(Small)

	var fig7, fig8 bytes.Buffer
	if err := Figure7(&fig7, r); err != nil {
		t.Fatal(err)
	}
	if err := Figure8(&fig8, r); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{fig7.String(), fig8.String()} {
		for _, name := range []string{"dedup", "fib", "msort", "primes", "tokens", "MEAN"} {
			if !strings.Contains(out, name) {
				t.Fatalf("figure output missing %q:\n%s", name, out)
			}
		}
	}

	// Figs. 9-11 reuse the dual-socket matrix from the runner cache; they
	// must not re-simulate (Progress counts fresh runs).
	fresh := 0
	r.Progress = func(string) { fresh++ }
	var b bytes.Buffer
	if err := Figure9(&b, r); err != nil {
		t.Fatal(err)
	}
	if err := Figure10(&b, r); err != nil {
		t.Fatal(err)
	}
	if err := Figure11(&b, r); err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Fatalf("figures 9-11 re-simulated %d runs despite the cache", fresh)
	}

	var fig12 bytes.Buffer
	if err := Figure12(&fig12, r); err != nil {
		t.Fatal(err)
	}
	for _, name := range DisaggregatedSubset {
		if !strings.Contains(fig12.String(), name) {
			t.Fatalf("figure 12 missing %q", name)
		}
	}

	// Sanity on the comparisons behind the reports.
	comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 14 {
		t.Fatalf("%d comparisons, want 14", len(comps))
	}
	for _, c := range comps {
		if s := c.Speedup(); s < 0.5 || s > 5 {
			t.Errorf("%s: implausible speedup %.2f", c.Name, s)
		}
		d, i := c.ReductionShares()
		if sum := d + i; c.InvDgReduced() != 0 && (sum < 99.9 || sum > 100.1) {
			t.Errorf("%s: reduction shares sum to %.1f", c.Name, sum)
		}
	}
}
