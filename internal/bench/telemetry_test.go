package bench

import (
	"bytes"
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/telemetry"
)

// TestMetricsGoldenCounters is the golden-counter test for the Metrics sink:
// its aggregates must equal the System's architectural counters exactly,
// under both protocols. Message counts, per-kind latency sample counts, and
// the reconciliation distribution are all derivable two ways (event stream
// vs. counter file), and the two views must agree.
func TestMetricsGoldenCounters(t *testing.T) {
	cfg := eventsTestConfig()
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range core.Protocols("mesi", "warden") {
		t.Run(proto.String(), func(t *testing.T) {
			met := core.NewMetrics()
			res, err := RunOneObserved(cfg, proto, e, e.Small, hlpl.DefaultOptions(),
				func(*machine.Machine) core.Sink { return met })
			if err != nil {
				t.Fatal(err)
			}
			ctr := res.Counters
			if met.Msgs != ctr.Msgs {
				t.Errorf("message counts diverge:\nmetrics:  %v\ncounters: %v", met.Msgs, ctr.Msgs)
			}
			if met.LoadLat.Count != ctr.Loads {
				t.Errorf("load latency samples %d != %d loads", met.LoadLat.Count, ctr.Loads)
			}
			if met.StoreLat.Count != ctr.Stores {
				t.Errorf("store latency samples %d != %d stores", met.StoreLat.Count, ctr.Stores)
			}
			if met.AtomicLat.Count != ctr.Atomics {
				t.Errorf("atomic latency samples %d != %d atomics", met.AtomicLat.Count, ctr.Atomics)
			}
			if met.ReconWrite.N != ctr.ReconciledBlocks {
				t.Errorf("reconcile samples %d != %d reconciled blocks", met.ReconWrite.N, ctr.ReconciledBlocks)
			}
			if met.TransLat.Count != ctr.DirAccesses {
				t.Errorf("transaction samples %d != %d directory accesses", met.TransLat.Count, ctr.DirAccesses)
			}
			if met.Events == 0 {
				t.Fatal("metrics sink observed no events")
			}
		})
	}
}

// TestTelemetryMatchesUnobserved is the tentpole's zero-perturbation
// guarantee, cycle-exact: a run with the full telemetry capture (windows,
// phases, heatmap, streaming Perfetto trace) attached must produce exactly
// the cycles and counters of a nil-sink run — and the capture's own
// aggregates must reconcile with the architectural counters, proving the
// windowed series loses nothing.
func TestTelemetryMatchesUnobserved(t *testing.T) {
	cfg := eventsTestConfig()
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	opts := hlpl.DefaultOptions()
	for _, proto := range core.Protocols("mesi", "warden") {
		t.Run(proto.String(), func(t *testing.T) {
			plain, err := RunOne(cfg, proto, e, e.Small, opts)
			if err != nil {
				t.Fatal(err)
			}
			var trace bytes.Buffer
			cap := telemetry.New(telemetry.Config{Topology: cfg, Trace: &trace})
			observed, err := RunOneObserved(cfg, proto, e, e.Small, opts,
				func(*machine.Machine) core.Sink { return cap })
			if err != nil {
				t.Fatal(err)
			}
			if err := cap.Close(); err != nil {
				t.Fatal(err)
			}
			if plain.Cycles != observed.Cycles {
				t.Fatalf("cycles %d (nil sink) != %d (telemetry attached)", plain.Cycles, observed.Cycles)
			}
			if plain.Counters != observed.Counters {
				t.Fatalf("counters diverge with telemetry attached:\nnil:      %+v\nobserved: %+v",
					plain.Counters, observed.Counters)
			}
			if cap.FinalCycle != observed.Cycles {
				t.Errorf("capture FinalCycle %d != run cycles %d", cap.FinalCycle, observed.Cycles)
			}

			// The windowed series must reconcile exactly with the counters.
			total := cap.Windows.EvictedTotals
			for _, w := range cap.Windows.Live() {
				total.Add(&w.Total)
			}
			ctr := observed.Counters
			for _, chk := range []struct {
				name      string
				got, want uint64
			}{
				{"instructions", total.Instructions, ctr.Instructions},
				{"loads", total.Loads, ctr.Loads},
				{"stores", total.Stores, ctr.Stores},
				{"atomics", total.Atomics, ctr.Atomics},
				{"invalidations", total.Invalidations, ctr.Invalidations},
				{"downgrades", total.Downgrades, ctr.Downgrades},
				{"messages", total.Msgs, ctr.TotalMsgs()},
				{"dram", total.DRAMAccesses, ctr.DRAMAccesses},
				{"ward accesses", total.WardAccesses, ctr.WardAccesses},
				{"reconciles", total.Reconciles, ctr.ReconciledBlocks},
			} {
				if chk.got != chk.want {
					t.Errorf("windowed %s = %d, counters say %d", chk.name, chk.got, chk.want)
				}
			}

			// Phase attribution covers every instruction exactly once.
			var attributed uint64
			for _, ps := range cap.Phases.Table() {
				attributed += ps.Ctrs.Instructions
			}
			if attributed != ctr.Instructions {
				t.Errorf("phase-attributed instructions %d != %d", attributed, ctr.Instructions)
			}

			// And the streamed trace validates.
			if _, err := telemetry.ValidatePerfetto(bytes.NewReader(trace.Bytes())); err != nil {
				t.Errorf("streamed Perfetto trace invalid: %v", err)
			}
		})
	}
}
