package bench

import (
	"bytes"
	"fmt"
	"testing"

	"warden/internal/pbbs"
	"warden/internal/topology"
)

func mustEntry(t *testing.T, name string) pbbs.Entry {
	t.Helper()
	e, err := pbbs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// renderSubset renders a small slice of the evaluation — comparison rows
// plus a config-mutating sweep row — at the given host parallelism,
// returning the exact bytes a user would see. Each call uses a fresh
// Runner so nothing is pre-memoized.
func renderSubset(t *testing.T, parallel int) string {
	t.Helper()
	r := NewRunner(Small)
	r.SetParallel(parallel)
	var buf bytes.Buffer
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	comps, err := r.CompareAll(cfg, []string{"fib", "primes", "tokens"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		fmt.Fprintf(&buf, "%s %.4fx %d %d %.3f %.3f\n", c.Name, c.Speedup(),
			c.MESI.Cycles, c.WARDen.Cycles, c.MESI.Energy.Total, c.WARDen.Energy.Total)
	}
	// A config mutated without a rename: the memo must treat it as a new
	// machine (the fingerprint covers every field), and its rows must be
	// just as reproducible.
	tiny := cfg
	tiny.WardRegionCapacity = 2
	c, err := r.Compare(tiny, mustEntry(t, "primes"))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "cap2 %.4fx %d %d %d\n", c.Speedup(),
		c.MESI.Cycles, c.WARDen.Cycles, c.WARDen.Counters.RegionOverflows)
	return buf.String()
}

// TestParallelMatchesSequential is the tentpole's determinism guarantee:
// fanning simulations across host cores must be invisible in the output —
// parallel and sequential runs render byte-identical reports.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation matrix")
	}
	seq := renderSubset(t, 1)
	for _, parallel := range []int{0, 4} {
		if par := renderSubset(t, parallel); par != seq {
			t.Fatalf("parallel=%d output diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				parallel, seq, par)
		}
	}
}
