package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"warden/internal/pbbs"
	"warden/internal/topology"
)

// DisaggregatedSubset is the benchmark subset carried into the
// disaggregated study (§7.3, Fig. 12). The paper selects "the most
// promising benchmarks from our study of modern hardware" — for its
// testbed that was dmm, grep, nn and palindrome; applying the same
// selection rule to this reproduction's dual-socket results picks the
// four below (see EXPERIMENTS.md).
var DisaggregatedSubset = []string{"msort", "palindrome", "suffix-array", "tokens"}

// Table1 runs the Fig. 6 true-sharing microbenchmark in the paper's three
// placements and prints the measured cycles per iteration next to the
// paper's published real-hardware and Sniper numbers.
//
// When r is non-nil the kernels run under r's engine mode with r's live
// probe attached, and their simulated cycles are credited to r — so a
// wardenbench "table1" step records real simulated throughput instead of
// simulated_cycles: 0. A nil r runs standalone (tests, ad-hoc callers).
func Table1(w io.Writer, r *Runner, iterations int) error {
	type row struct {
		scenario    string
		cfg         topology.Config
		a, b        int
		paperReal   float64
		paperSniper float64
	}
	smt := topology.XeonGold6126(1)
	smt.ThreadsPerCore = 2
	rows := []row{
		{"Same core", smt, 0, 1, 8.738, 11.21},
		{"Diff. core, same socket", topology.XeonGold6126(1), 0, 1, 479.68, 286.01},
		{"Diff. core, diff. socket", topology.XeonGold6126(2), 0, 12, 1163.23, 1213.59},
	}
	fmt.Fprintln(w, "Table 1: Validation of the simulator's data-movement latencies")
	fmt.Fprintln(w, "(true-sharing ping-pong kernel of Fig. 6; latencies in cycles/iteration)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Scenario\tPaper real HW\tPaper Sniper\tThis simulator")
	for _, row := range rows {
		var res pbbs.PingPongResult
		var err error
		if r != nil {
			res, err = pbbs.PingPongOn(r.Engine, r.probe, row.cfg, row.a, row.b, iterations, row.scenario)
		} else {
			res, err = pbbs.PingPong(row.cfg, row.a, row.b, iterations, row.scenario)
		}
		if err != nil {
			return err
		}
		if r != nil {
			r.NoteExternalSim(res.Cycles)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n", row.scenario, row.paperReal, row.paperSniper, res.CyclesPerIter)
	}
	return tw.Flush()
}

// Table2 prints the simulated system specification (encoded as the default
// topology).
func Table2(w io.Writer) {
	c := topology.XeonGold6126(2)
	fmt.Fprintln(w, "Table 2: Simulated system specifications")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "L1 Size\t%d KB\tL1/L2 Associativity\t%d\n", c.L1Size>>10, c.L1Assoc)
	fmt.Fprintf(tw, "L2 Size\t%d KB\tL3 Associativity\t%d\n", c.L2Size>>10, c.L3Assoc)
	fmt.Fprintf(tw, "L3 Size (per core)\t%.1f MB\tL1/L2/L3 latencies\t%d-%d-%d cycles\n",
		float64(c.L3SizePerCore)/(1<<20), c.L1Latency, c.L2Latency, c.L3Latency)
	fmt.Fprintf(tw, "Cache Block Size\t%d B\tFrequency\t%.1f GHz\n", c.BlockSize, c.FrequencyGHz)
	fmt.Fprintf(tw, "Cores per Socket\t%d\tIntersocket latency\t%d cycles\n", c.CoresPerSocket, c.InterSocketLatency)
	tw.Flush()
}

// speedupEnergyReport renders the Figs. 7/8 layout: per-benchmark speedup
// plus interconnect and total-processor energy savings.
func speedupEnergyReport(w io.Writer, title string, comps []Comparison) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tSpeedup\tInterconnect energy savings\tTotal processor energy savings")
	var sp, ic, tot []float64
	for _, c := range comps {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.1f%%\t%.1f%%\n",
			c.Name, c.Speedup(), c.InterconnectSavings(), c.TotalEnergySavings())
		sp = append(sp, c.Speedup())
		ic = append(ic, c.InterconnectSavings())
		tot = append(tot, c.TotalEnergySavings())
	}
	fmt.Fprintf(tw, "MEAN\t%.2fx\t%.1f%%\t%.1f%%\n", geomean(sp), mean(ic), mean(tot))
	tw.Flush()
}

// Figure7 is the single-socket performance and energy study (Fig. 7).
// Paper means: 1.24x speedup, 17.3% interconnect / 17.4% total energy.
func Figure7(w io.Writer, r *Runner) error {
	comps, err := r.CompareAll(topology.XeonGold6126(1), nil)
	if err != nil {
		return err
	}
	speedupEnergyReport(w, "Figure 7: Performance and energy gains on single socket\n(paper means: speedup 1.24x, interconnect 17.3%, total 17.4%)", comps)
	return nil
}

// Figure8 is the dual-socket study (Fig. 8). Paper means: 1.46x speedup,
// 52.9% interconnect / 23.1% total energy savings.
func Figure8(w io.Writer, r *Runner) error {
	comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
	if err != nil {
		return err
	}
	speedupEnergyReport(w, "Figure 8: Performance and energy gains on dual socket\n(paper means: speedup 1.46x, interconnect 52.9%, total 23.1%)", comps)
	return nil
}

// Figure9 charts dual-socket speedup against the reduction in
// invalidations+downgrades per kilo-instruction (Fig. 9).
func Figure9(w io.Writer, r *Runner) error {
	comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: Dual-socket speedup with the reduction in invalidations and downgrades")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tInv+Down reduced per kilo-instr\tSpeedup")
	for _, c := range comps {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2fx\n", c.Name, c.InvDgReducedPerKilo(), c.Speedup())
	}
	return tw.Flush()
}

// Figure10 splits each benchmark's avoided coherence events into downgrade
// and invalidation shares (Fig. 10).
func Figure10(w io.Writer, r *Runner) error {
	comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10: Percent of coherence-event reduction by type")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tDowngrade reduction %\tInvalidation reduction %")
	for _, c := range comps {
		d, i := c.ReductionShares()
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\n", c.Name, d, i)
	}
	return tw.Flush()
}

// Figure11 reports the percent IPC improvement under WARDen (Fig. 11).
func Figure11(w io.Writer, r *Runner) error {
	comps, err := r.CompareAll(topology.XeonGold6126(2), nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 11: Percentage IPC improvement (dual socket)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tIPC improvement\t(MESI IPC\tWARDen IPC)")
	for _, c := range comps {
		fmt.Fprintf(tw, "%s\t%+.1f%%\t%.3f\t%.3f\n", c.Name, c.IPCImprovement(), c.MESI.IPC(), c.WARDen.IPC())
	}
	return tw.Flush()
}

// Figure12 is the disaggregated-machine study on the paper's four-benchmark
// subset (Fig. 12). Paper means: 3.8x speedup; energy savings ~49.5%
// in-processor, ~77.1% network.
func Figure12(w io.Writer, r *Runner) error {
	comps, err := r.CompareAll(topology.Disaggregated(), DisaggregatedSubset)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 12: Performance and energy gains on disaggregated (1 µs remote access)")
	fmt.Fprintln(w, "(paper means: speedup 3.8x, network 77.1%, in-processor 49.5%)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tSpeedup\tIn-processor savings\tNetwork savings\tTotal processor savings")
	var sp, ip, nw, tot []float64
	for _, c := range comps {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.1f%%\t%.1f%%\t%.1f%%\n",
			c.Name, c.Speedup(), c.InProcessorSavings(), c.InterconnectSavings(), c.TotalEnergySavings())
		sp = append(sp, c.Speedup())
		ip = append(ip, c.InProcessorSavings())
		nw = append(nw, c.InterconnectSavings())
		tot = append(tot, c.TotalEnergySavings())
	}
	fmt.Fprintf(tw, "MEAN\t%.2fx\t%.1f%%\t%.1f%%\t%.1f%%\n", geomean(sp), mean(ip), mean(nw), mean(tot))
	return tw.Flush()
}
