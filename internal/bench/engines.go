package bench

// Engine-timing comparison: the same benchmark subset simulated under the
// sequential and PDES engines, so a wardenbench -timing snapshot records
// the PDES speedup (or overhead) on the recording host. The simulated
// results are byte-identical across engines — only the host wall-clock of
// the engine-seq vs engine-pdes steps differs, and that ratio is the
// speedup figure. It is host-dependent by construction (GOMAXPROCS and
// core count travel in the same records).

import (
	"fmt"
	"io"
	"text/tabwriter"

	"warden/internal/machine"
	"warden/internal/topology"
)

// EngineTimingSubset is the benchmark subset the engine-seq / engine-pdes
// steps time: two WARD beneficiaries with distinct sharing patterns plus a
// compute-heavy kernel, small enough to keep the sweep quick but long
// enough that wall-clock dominates process noise.
var EngineTimingSubset = []string{"fib", "primes", "dedup"}

// EngineComparison simulates EngineTimingSubset under both protocols with
// the given engine mode on a fresh, single-host-worker runner — so the
// step's wall-clock measures the engine itself, not the harness fan-out —
// and credits the simulated cycles to r for the step's perfdb record. The
// printed cycle table is engine-invariant (the differential suite asserts
// it); only the header names the mode.
func EngineComparison(w io.Writer, r *Runner, emode machine.EngineMode) error {
	sub := NewRunner(r.Sizes)
	sub.Opts = r.Opts
	sub.Engine = emode
	sub.Progress = r.Progress
	if r.probe != nil {
		sub.SetProbe(r.probe)
	}
	cfg := topology.XeonGold6126(2)
	comps, err := sub.CompareAll(cfg, EngineTimingSubset)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Engine timing subset (engine=%v; cycles are engine-invariant)\n", emode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tMESI cycles\tWARDen cycles")
	for _, c := range comps {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", c.Name, c.MESI.Cycles, c.WARDen.Cycles)
		r.NoteExternalSim(c.MESI.Cycles)
		r.NoteExternalSim(c.WARDen.Cycles)
	}
	return tw.Flush()
}
