package bench

// Attribution integration for the experiment harness: when enabled on a
// Runner, every uncached simulation runs with an attrib.Ledger attached,
// reconciles it exactly against the measured cycle count (a residue aborts
// the run — see attrib.Ledger.Reconcile), and writes the ledger accounts
// and per-block flight records as JSONL artifacts. Like telemetry, the
// ledger is a pure-observation sink: attribution-enabled runs are byte-
// identical to bare runs under both engines (TestAttribMatchesUnobserved).
// runInstrumented is the shared instrumented-simulation path — telemetry
// and attribution compose onto one run through core.Sinks.

import (
	"fmt"
	"io"
	"sync/atomic"

	"warden/internal/attrib"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/obs"
	"warden/internal/pbbs"
	"warden/internal/runner"
	"warden/internal/telemetry"
	"warden/internal/topology"
)

// AttribConfig enables per-run cycle attribution on a Runner.
type AttribConfig struct {
	// Dir receives the .attrib.jsonl (ledger accounts) and .blocks.jsonl
	// (flight-recorder summaries) dumps. Empty disables attribution.
	Dir string
	// BucketBytes, FlightDepth, MaxBlocks override the attrib.Config
	// defaults (0 keeps each default).
	BucketBytes uint64
	FlightDepth int
	MaxBlocks   int
	// Artifacts, when non-nil, collects every file written.
	Artifacts *runner.Artifacts
}

// ledgerConfig maps the harness options onto an attrib.Config.
func (ac *AttribConfig) ledgerConfig() attrib.Config {
	return attrib.Config{
		BucketBytes: ac.BucketBytes,
		FlightDepth: ac.FlightDepth,
		MaxBlocks:   ac.MaxBlocks,
	}
}

// SetAttrib configures per-run attribution artifacts for all subsequent
// (uncached) simulations. Like SetTelemetry it is excluded from the memo
// key: attribution cannot change a measurement.
func (r *Runner) SetAttrib(ac AttribConfig) { r.attrib = ac }

// attribCounters aggregates the runner's attribution activity for the
// warden_attrib_* metric families.
type attribCounters struct {
	runs     atomic.Uint64 // attribution-enabled simulations completed
	cycles   atomic.Uint64 // cycles exactly attributed (i.e. reconciled)
	accounts atomic.Uint64 // ledger accounts written
	blocks   atomic.Uint64 // blocks tracked by flight recorders
}

// attribFamilies renders the warden_attrib_* families. They are always
// present (zero-valued when attribution is disabled) so dashboards and CI
// assertions can rely on the family names existing. The residue counter
// stays 0 by construction: a nonzero residue fails the run instead of
// being exported.
func (c *attribCounters) families() []obs.Family {
	return []obs.Family{
		obs.Counter("warden_attrib_runs_total",
			"Attribution-enabled simulations completed.", float64(c.runs.Load())),
		obs.Counter("warden_attrib_cycles_total",
			"Simulated cycles exactly attributed (reconciled) by completed ledgers.", float64(c.cycles.Load())),
		obs.Counter("warden_attrib_accounts_total",
			"Attribution ledger accounts (thread x kind x bucket x phase cells) written.", float64(c.accounts.Load())),
		obs.Counter("warden_attrib_blocks_total",
			"Cache blocks tracked by flight recorders across completed runs.", float64(c.blocks.Load())),
		obs.Counter("warden_attrib_residue_total",
			"Reconciliation residue cycles. Always 0: a nonzero residue fails the run.", 0),
	}
}

// runInstrumented executes one simulation with the enabled observation
// sinks (telemetry capture and/or attribution ledger) attached through
// core.Sinks, then writes their artifact files. Measurements are identical
// to RunOne's. run, when non-nil, collects artifact paths and flight-
// recorder summaries for /runs/{id} and /runs/{id}/blocks.
func (r *Runner) runInstrumented(cfg topology.Config, proto core.Protocol, e pbbs.Entry, size int, opts hlpl.Options, run *obs.Run) (Result, error) {
	base := artifactBase(e.Name, proto, cfg, size, opts)

	var cap *telemetry.Capture
	var traceF io.WriteCloser
	if r.tele.Dir != "" {
		tcfg := telemetry.Config{Topology: cfg, WindowCycles: r.tele.WindowCycles}
		if r.tele.TraceDir != "" {
			name := base + ".trace.json"
			if r.tele.TraceGzip {
				name += ".gz"
			}
			var err error
			traceF, _, err = createArtifact(r.tele.Artifacts, r.tele.TraceDir, name, run)
			if err != nil {
				return Result{}, fmt.Errorf("bench: telemetry trace: %w", err)
			}
			tcfg.Trace = traceF
		}
		cap = telemetry.New(tcfg)
	}
	var led *attrib.Ledger
	if r.attrib.Dir != "" {
		led = attrib.New(r.attrib.ledgerConfig())
	}

	// Collect only the enabled sinks as interfaces: a nil *Ledger (or
	// *Capture) wrapped in a core.Sink is non-nil and would slip past
	// core.Sinks' nil filter into the engine.
	var sinks []core.Sink
	if cap != nil {
		sinks = append(sinks, cap)
	}
	if led != nil {
		sinks = append(sinks, led)
	}
	res, err := runObserved(cfg, proto, e, size, opts, r.Engine,
		func(*machine.Machine) core.Sink { return core.Sinks(sinks...) }, r.probe, nil)
	if cap != nil {
		if cerr := cap.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("bench: telemetry trace: %w", cerr)
		}
	}
	if traceF != nil {
		if cerr := traceF.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("bench: telemetry trace: %w", cerr)
		}
	}
	if err != nil {
		return Result{}, err
	}

	if cap != nil {
		for _, art := range []struct {
			name  string
			write func(io.Writer) error
		}{
			{base + ".windows.csv", cap.Windows.WriteCSV},
			{base + ".windows.jsonl", cap.Windows.WriteJSONL},
			{base + ".phases.csv", cap.Phases.WriteCSV},
			{base + ".heatmap.csv", cap.Heat.WriteCSV},
		} {
			if werr := writeArtifact(r.tele.Artifacts, r.tele.Dir, art.name, run, art.write); werr != nil {
				return Result{}, fmt.Errorf("bench: telemetry: %w", werr)
			}
		}
	}
	if led != nil {
		// The reconciliation invariant: the ledger must sum exactly to the
		// measured cycle count. A residue means the Advance plumbing broke —
		// fail the run rather than report unsound attribution.
		if rerr := led.Reconcile(res.Cycles); rerr != nil {
			return Result{}, fmt.Errorf("bench: %s: %w", base, rerr)
		}
		for _, art := range []struct {
			name  string
			write func(io.Writer) error
		}{
			{base + ".attrib.jsonl", led.WriteJSONL},
			{base + ".blocks.jsonl", led.Flight().WriteJSONL},
		} {
			if werr := writeArtifact(r.attrib.Artifacts, r.attrib.Dir, art.name, run, art.write); werr != nil {
				return Result{}, fmt.Errorf("bench: attrib: %w", werr)
			}
		}
		if run != nil {
			run.SetBlocks(led.Flight().Summaries())
		}
		r.attribCtr.runs.Add(1)
		r.attribCtr.cycles.Add(res.Cycles)
		r.attribCtr.accounts.Add(uint64(len(led.Rows())))
		r.attribCtr.blocks.Add(uint64(len(led.Flight().Blocks())))
	}
	return res, nil
}
