package bench

import (
	"strings"
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

func eventsTestConfig() topology.Config {
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	return cfg
}

// TestInvariantChecker runs the per-event invariant checker over four
// benchmarks under both protocols: every directory transaction, eviction,
// and reconciliation is validated against the private caches as it happens,
// with periodic whole-system sweeps and a final one after the drain.
func TestInvariantChecker(t *testing.T) {
	cfg := eventsTestConfig()
	for _, name := range EventsBenchmarks {
		e, err := pbbs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, proto := range core.Protocols("mesi", "warden") {
			t.Run(name+"/"+proto.String(), func(t *testing.T) {
				var chk *core.Checker
				_, err := RunOneObserved(cfg, proto, e, e.Small, hlpl.DefaultOptions(),
					func(m *machine.Machine) core.Sink {
						chk = core.NewChecker(m.System())
						return chk
					})
				if err != nil {
					t.Fatal(err)
				}
				if err := chk.Final(); err != nil {
					t.Fatal(err)
				}
				if chk.Events() == 0 {
					t.Fatal("checker observed no events")
				}
			})
		}
	}
}

// TestObservedMatchesUnobserved asserts the tentpole's zero-cost claim from
// the other side: attaching sinks must not change simulated behaviour.
// Cycles and every architectural counter must match a nil-sink run exactly.
func TestObservedMatchesUnobserved(t *testing.T) {
	cfg := eventsTestConfig()
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	opts := hlpl.DefaultOptions()
	for _, proto := range core.Protocols("mesi", "warden") {
		plain, err := RunOne(cfg, proto, e, e.Small, opts)
		if err != nil {
			t.Fatal(err)
		}
		met := core.NewMetrics()
		observed, err := RunOneObserved(cfg, proto, e, e.Small, opts,
			func(m *machine.Machine) core.Sink {
				return core.Sinks(met, core.NewChecker(m.System()))
			})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Cycles != observed.Cycles {
			t.Fatalf("%v: cycles %d (nil sink) != %d (observed)", proto, plain.Cycles, observed.Cycles)
		}
		if plain.Counters != observed.Counters {
			t.Fatalf("%v: counters diverge with a sink attached:\nnil:      %+v\nobserved: %+v",
				proto, plain.Counters, observed.Counters)
		}
		if met.Events == 0 {
			t.Fatal("metrics sink observed no events")
		}
	}
}

// TestMetricsReportDeterministic renders the events report twice and
// requires byte-identical output.
func TestMetricsReportDeterministic(t *testing.T) {
	cfg := eventsTestConfig()
	render := func() string {
		var sb strings.Builder
		if err := EventsReport(&sb, cfg, Small, []string{"primes"}, 5); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("EventsReport output is not deterministic")
	}
	if !strings.Contains(a, "hottest blocks") || !strings.Contains(a, "sharers at transaction time") {
		t.Fatalf("report missing sections:\n%s", a)
	}
}
