package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

// ManySocketSubset is the communication-heavy subset used for the socket
// scaling study.
var ManySocketSubset = []string{"msort", "suffix-array", "tokens", "grep"}

// ManySockets is the §7.3 "Many Sockets" study: the paper argues (without a
// figure) that as socket counts grow and interconnect latencies continue to
// rise, WARDen's advantage becomes more prevalent. This experiment makes
// that quantitative: mean speedup and interconnect-energy savings across
// 1, 2, 4, and 8 sockets, holding the total core count's growth and the
// per-socket configuration to Table 2 while the cross-socket latency
// scales with machine size (topology.ManySocket).
func ManySockets(w io.Writer, r *Runner) error {
	sockets := []int{1, 2, 4, 8}
	// Warm the full (socket count × benchmark × protocol) matrix across
	// the pool before rendering row by row from the memo.
	subset, err := entriesByName(ManySocketSubset)
	if err != nil {
		return err
	}
	cells := 2 * len(subset)
	if err := r.warm(len(sockets)*cells, func(i int) (topology.Config, core.Protocol, pbbs.Entry, hlpl.Options) {
		proto := core.MESI
		if i%2 == 1 {
			proto = core.WARDen
		}
		return manySocketConfig(sockets[i/cells]), proto, subset[i%cells/2], r.Opts
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "Many sockets (§7.3): WARDen's benefit vs machine scale")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Sockets\tCores\tIntersocket latency\tMean speedup\tMean interconnect savings\tMean total savings")
	for _, sockets := range sockets {
		cfg := manySocketConfig(sockets)
		comps, err := r.CompareAll(cfg, ManySocketSubset)
		if err != nil {
			return err
		}
		var sp, ic, tot []float64
		for _, c := range comps {
			sp = append(sp, c.Speedup())
			ic = append(ic, c.InterconnectSavings())
			tot = append(tot, c.TotalEnergySavings())
		}
		fmt.Fprintf(tw, "%d\t%d\t%d cycles\t%.2fx\t%.1f%%\t%.1f%%\n",
			sockets, cfg.Cores(), cfg.InterSocketLatency, geomean(sp), mean(ic), mean(tot))
	}
	return tw.Flush()
}

// manySocketConfig builds the socket-scaling study's machine for a socket
// count: Table 2's Xeon up to two sockets, the rising-latency ManySocket
// topology beyond.
func manySocketConfig(sockets int) topology.Config {
	if sockets <= 2 {
		return topology.XeonGold6126(sockets)
	}
	cfg := topology.ManySocket(sockets)
	// The directory's sharer mask tracks up to 64 cores; trim the
	// per-socket core count on the largest machines.
	if cfg.Cores() > 64 {
		cfg.CoresPerSocket = 64 / sockets
		cfg.Name = fmt.Sprintf("%s-%dc", cfg.Name, cfg.CoresPerSocket)
	}
	return cfg
}
