// Package bench is the experiment harness: it runs (benchmark × protocol ×
// topology) matrices on the simulator and regenerates every table and
// figure of the paper's evaluation (§7) as text reports. The per-experiment
// index in DESIGN.md maps each paper artifact to the functions here.
package bench

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"warden/internal/core"
	"warden/internal/energy"
	"warden/internal/engine"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/obs"
	"warden/internal/pbbs"
	"warden/internal/runner"
	"warden/internal/stats"
	"warden/internal/topology"
)

// Result is one benchmark run on one machine.
type Result struct {
	Benchmark string
	Protocol  core.Protocol
	Config    topology.Config
	Size      int
	Cycles    uint64
	Counters  stats.Counters
	Energy    energy.Breakdown
}

// IPC returns the run's instructions per cycle.
func (r Result) IPC() float64 { return r.Counters.IPC(r.Cycles) }

// RunOne executes one benchmark at the given size on a fresh machine and
// returns its measurements. Results are verified; a verification failure is
// an error (a coherence bug, not a measurement).
func RunOne(cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options) (Result, error) {
	return runObserved(cfg, proto, entry, size, opts, machine.EngineSequential, nil, nil, nil)
}

// Comparison is one benchmark's MESI-vs-WARDen measurement pair with the
// derived metrics the figures chart.
type Comparison struct {
	Name   string
	MESI   Result
	WARDen Result
}

// Speedup is MESI cycles over WARDen cycles (Figs. 7a, 8a, 12a).
func (c Comparison) Speedup() float64 {
	if c.WARDen.Cycles == 0 {
		return 0
	}
	return float64(c.MESI.Cycles) / float64(c.WARDen.Cycles)
}

// TotalEnergySavings is the percent reduction in total processor energy.
func (c Comparison) TotalEnergySavings() float64 {
	return energy.Savings(c.MESI.Energy.Total, c.WARDen.Energy.Total)
}

// InterconnectSavings is the percent reduction in interconnect energy.
func (c Comparison) InterconnectSavings() float64 {
	return energy.Savings(c.MESI.Energy.Interconnect, c.WARDen.Energy.Interconnect)
}

// InProcessorSavings is the percent reduction in in-processor energy
// (Fig. 12b's third series).
func (c Comparison) InProcessorSavings() float64 {
	return energy.Savings(c.MESI.Energy.InProcessor(), c.WARDen.Energy.InProcessor())
}

// InvDgReduced is the number of invalidations+downgrades WARDen avoided.
func (c Comparison) InvDgReduced() int64 {
	m := int64(c.MESI.Counters.Invalidations + c.MESI.Counters.Downgrades)
	w := int64(c.WARDen.Counters.Invalidations + c.WARDen.Counters.Downgrades)
	return m - w
}

// InvDgReducedPerKilo is avoided invalidations+downgrades per 1000
// executed instructions (Fig. 9's left axis).
func (c Comparison) InvDgReducedPerKilo() float64 {
	if c.MESI.Counters.Instructions == 0 {
		return 0
	}
	return float64(c.InvDgReduced()) * 1000 / float64(c.MESI.Counters.Instructions)
}

// ReductionShares splits the avoided coherence events into downgrade and
// invalidation percentages (Fig. 10). Shares are of the total reduction;
// if nothing was reduced both are zero.
func (c Comparison) ReductionShares() (downPct, invPct float64) {
	dInv := int64(c.MESI.Counters.Invalidations) - int64(c.WARDen.Counters.Invalidations)
	dDg := int64(c.MESI.Counters.Downgrades) - int64(c.WARDen.Counters.Downgrades)
	tot := dInv + dDg
	if tot == 0 {
		return 0, 0
	}
	return 100 * float64(dDg) / float64(tot), 100 * float64(dInv) / float64(tot)
}

// IPCImprovement is the percent IPC change from MESI to WARDen (Fig. 11).
// It can be negative even for sped-up benchmarks (the paper's ray): fewer
// busy-wait instructions lower IPC while improving time.
func (c Comparison) IPCImprovement() float64 {
	m := c.MESI.IPC()
	if m == 0 {
		return 0
	}
	return 100 * (c.WARDen.IPC() - m) / m
}

// SizeClass selects the preset input sizes.
type SizeClass int

const (
	// Small runs in well under a second per benchmark — unit-test scale.
	Small SizeClass = iota
	// Medium is the evaluation scale (the paper tunes inputs the same way,
	// §7.1).
	Medium
)

func (s SizeClass) pick(e pbbs.Entry) int {
	if s == Small {
		return e.Small
	}
	return e.Medium
}

// Runner executes benchmark runs, fanning independent simulations across
// host cores and memoizing results so the figures that share a run matrix
// (Figs. 8–11 all use the dual-socket runs) simulate each configuration
// once per process. Each simulation is bit-reproducible and results are
// aggregated in job order, so the rendered reports are byte-identical at
// every parallelism level (asserted by TestParallelMatchesSequential).
type Runner struct {
	Sizes SizeClass
	Opts  hlpl.Options
	// Engine selects the simulation scheduler for every run this runner
	// executes (default sequential). It is part of the memo key even
	// though both modes produce identical Results, so that engine-timing
	// comparisons (EngineComparison) measure real simulations rather than
	// memo recalls.
	Engine machine.EngineMode
	pool   *runner.Pool
	memo   runner.Memo[Result]
	// Progress, if set, is called before each uncached simulation. Calls
	// are serialized, but under a parallel pool their order varies run to
	// run (simulation results never do).
	Progress func(msg string)
	progMu   sync.Mutex

	// tele enables per-run telemetry artifacts (see SetTelemetry). The memo
	// key does not include it: telemetry never changes a measurement, so a
	// Result is the same with or without artifacts.
	tele TelemetryConfig

	// attrib enables per-run cycle-attribution artifacts (see SetAttrib).
	// Excluded from the memo key for the same reason as tele; attribCtr
	// feeds the warden_attrib_* metric families.
	attrib    AttribConfig
	attribCtr attribCounters

	// probe and reg are the observability plane's hooks (SetProbe,
	// SetObserver). Both are host-side only and excluded from the memo
	// key for the same reason telemetry is: they cannot change a Result.
	probe *engine.Probe
	reg   *obs.Registry

	simCycles atomic.Uint64 // total cycles of uncached simulations
	simRuns   atomic.Uint64 // number of uncached simulations
}

// NewRunner returns a sequential runner at the given size class with
// paper-faithful runtime options. Use SetParallel to fan out.
func NewRunner(sizes SizeClass) *Runner {
	return &Runner{Sizes: sizes, Opts: hlpl.DefaultOptions(), pool: runner.New(1)}
}

// SetParallel bounds how many simulations run concurrently on the host:
// 1 is sequential, 0 selects one per host core (GOMAXPROCS).
func (r *Runner) SetParallel(n int) { r.pool = runner.New(n) }

// Parallel reports the current host-parallelism bound.
func (r *Runner) Parallel() int { return r.pool.Workers() }

// SimulatedCycles returns the total simulated cycles and run count of the
// uncached simulations executed so far (memo hits add nothing).
func (r *Runner) SimulatedCycles() (cycles, runs uint64) {
	return r.simCycles.Load(), r.simRuns.Load()
}

// NoteExternalSim credits a simulation executed outside the runner's memo
// path (figure helpers like Table1, engine-timing sweeps) to the runner's
// cycle and run totals, so perfdb step records report real throughput.
func (r *Runner) NoteExternalSim(cycles uint64) {
	r.simCycles.Add(cycles)
	r.simRuns.Add(1)
}

// SetProbe attaches a live engine progress probe to every subsequent
// uncached simulation. The probe is shared across concurrent machines;
// its counters are readable from any goroutine via Probe.Sample.
func (r *Runner) SetProbe(p *engine.Probe) { r.probe = p }

// SetObserver registers every subsequent uncached simulation as a run in
// reg, with wall-clock, cycles, per-run counters, and (with telemetry
// enabled) artifact paths. Memo hits register nothing: a cached Result
// has no execution to observe.
func (r *Runner) SetObserver(reg *obs.Registry) { r.reg = reg }

// MemoStats reports the simulation memo cache's hit/miss counters.
func (r *Runner) MemoStats() runner.MemoStats { return r.memo.Stats() }

// MetricFamilies implements obs.Source: memo-cache effectiveness and the
// uncached-simulation totals, for /metrics. The memo families go through
// obs.CacheFamilies, the same surface the fleet coordinator's result cache
// uses, so local and distributed cache behaviour read identically on a
// dashboard (warden_memo_* vs warden_fleet_cache_*).
func (r *Runner) MetricFamilies() []obs.Family {
	ms := r.memo.Stats()
	cycles, runs := r.SimulatedCycles()
	fams := obs.CacheFamilies("warden_memo", "Simulation memo",
		obs.CacheStats{Hits: ms.Hits, Misses: ms.Misses, Entries: ms.Entries})
	fams = append(fams,
		obs.Counter("warden_sim_completed_cycles_total",
			"Simulated cycles of completed uncached simulations.", float64(cycles)),
		obs.Counter("warden_sim_completed_runs_total",
			"Completed uncached simulations.", float64(runs)),
	)
	return append(fams, r.attribCtr.families()...)
}

// runCounterSet is the per-run counter subset published to the run
// registry (and aggregated into warden_machine_*_total).
func recordRunCounters(run *obs.Run, res Result) {
	c := res.Counters
	for _, kv := range []struct {
		name string
		v    uint64
	}{
		{"instructions", c.Instructions},
		{"loads", c.Loads},
		{"stores", c.Stores},
		{"atomics", c.Atomics},
		{"l1_hits", c.L1Hits},
		{"l1_accesses", c.L1Accesses},
		{"dir_accesses", c.DirAccesses},
		{"dram_accesses", c.DRAMAccesses},
		{"invalidations", c.Invalidations},
		{"downgrades", c.Downgrades},
		{"messages", c.TotalMsgs()},
		{"intersocket_flits", c.IntersocketFlits},
		{"ward_accesses", c.WardAccesses},
		{"reconciled_blocks", c.ReconciledBlocks},
	} {
		run.SetCounter(kv.name, kv.v)
	}
}

// runWith executes (or recalls) one fully-specified simulation. The memo
// key fingerprints every field of the config and options, so ablation
// sweeps that mutate a config without renaming it still get distinct
// entries.
func (r *Runner) runWith(cfg topology.Config, proto core.Protocol, e pbbs.Entry, size int, opts hlpl.Options) (Result, error) {
	key := runner.Fingerprint(cfg, proto, e.Name, size, opts, r.Engine)
	return r.memo.Do(key, func() (Result, error) {
		if r.Progress != nil {
			r.progMu.Lock()
			r.Progress(fmt.Sprintf("simulating %-13s %-7v on %s (size %d)", e.Name, proto, cfg.Name, size))
			r.progMu.Unlock()
		}
		var run *obs.Run
		if r.reg != nil {
			run = r.reg.NewRun("simulation",
				fmt.Sprintf("%s/%v/%s", e.Name, proto, cfg.Name),
				map[string]string{
					"benchmark": e.Name,
					"protocol":  fmt.Sprint(proto),
					"machine":   cfg.Name,
					"size":      strconv.Itoa(size),
				})
			run.Start()
		}
		var res Result
		var err error
		if r.tele.Dir != "" || r.attrib.Dir != "" {
			res, err = r.runInstrumented(cfg, proto, e, size, opts, run)
		} else {
			res, err = runObserved(cfg, proto, e, size, opts, r.Engine, nil, r.probe, nil)
		}
		if run != nil {
			if err == nil {
				recordRunCounters(run, res)
			}
			run.Finish(res.Cycles, err)
		}
		if err != nil {
			return Result{}, err
		}
		r.simCycles.Add(res.Cycles)
		r.simRuns.Add(1)
		return res, nil
	})
}

func (r *Runner) run(cfg topology.Config, proto core.Protocol, e pbbs.Entry) (Result, error) {
	return r.runWith(cfg, proto, e, r.Sizes.pick(e), r.Opts)
}

// warm fans n fully-specified simulations across the pool so that later,
// sequential report rendering hits the memo. spec(i) describes job i; its
// size is the runner's size class.
func (r *Runner) warm(n int, spec func(i int) (topology.Config, core.Protocol, pbbs.Entry, hlpl.Options)) error {
	_, err := runner.Map(r.pool, n, func(i int) (Result, error) {
		cfg, proto, e, opts := spec(i)
		return r.runWith(cfg, proto, e, r.Sizes.pick(e), opts)
	})
	return err
}

// Compare runs one benchmark under both protocols on cfg.
func (r *Runner) Compare(cfg topology.Config, e pbbs.Entry) (Comparison, error) {
	protos := core.Protocols("mesi", "warden")
	res, err := runner.Map(r.pool, len(protos), func(i int) (Result, error) {
		return r.run(cfg, protos[i], e)
	})
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Name: e.Name, MESI: res[0], WARDen: res[1]}, nil
}

// CompareAll runs the whole suite (or the named subset) on cfg. All
// (benchmark × protocol) cells fan out across the runner's pool; the
// returned slice follows the input order regardless of parallelism.
func (r *Runner) CompareAll(cfg topology.Config, names []string) ([]Comparison, error) {
	entries := pbbs.Suite
	if names != nil {
		entries = nil
		for _, n := range names {
			e, err := pbbs.ByName(n)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
		}
	}
	protos := core.Protocols("mesi", "warden")
	res, err := runner.Map(r.pool, len(entries)*len(protos), func(i int) (Result, error) {
		return r.run(cfg, protos[i%len(protos)], entries[i/len(protos)])
	})
	if err != nil {
		return nil, err
	}
	out := make([]Comparison, len(entries))
	for i, e := range entries {
		out[i] = Comparison{Name: e.Name, MESI: res[2*i], WARDen: res[2*i+1]}
	}
	return out, nil
}

// geomean returns the geometric mean of vals (the MEAN bar of the figures).
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		prod *= v
	}
	return math.Pow(prod, 1.0/float64(len(vals)))
}

// mean returns the arithmetic mean of vals (used for percentage series).
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
