package bench

// Event-stream variants of the harness entry points: RunOneObserved runs a
// benchmark with a caller-supplied sink attached to the memory system, and
// EventsReport renders the Metrics-sink view (latency histograms, sharer
// distributions, per-block contention) for a fixed benchmark subset under
// both protocols — wardenbench -events.

import (
	"fmt"
	"io"

	"warden/internal/core"
	"warden/internal/energy"
	"warden/internal/engine"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

// RunOneObserved is RunOne with an event sink: attach builds the sink for
// the freshly created machine (so sinks that need the System, like
// core.NewChecker, can reach it) and may return nil for an unobserved run.
// The sink sees the full run including the final drain; it is detached
// before verification so host-side checks don't pollute the stream.
func RunOneObserved(cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options, attach func(*machine.Machine) core.Sink) (Result, error) {
	return runObserved(cfg, proto, entry, size, opts, machine.EngineSequential, attach, nil, nil)
}

// RunOneObservedOn is RunOneObserved under an explicit engine mode. Both
// modes produce byte-identical results (the PDES differential suite
// asserts it); the mode only selects how the simulation uses host cores.
func RunOneObservedOn(emode machine.EngineMode, cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options, attach func(*machine.Machine) core.Sink) (Result, error) {
	return runObserved(cfg, proto, entry, size, opts, emode, attach, nil, nil)
}

// RunOneProbed is RunOne with a live progress probe attached to the
// machine's engine — the wardensim -serve path. The probe is host-visible
// only; results are identical to RunOne's.
func RunOneProbed(cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options, probe *engine.Probe) (Result, error) {
	return runObserved(cfg, proto, entry, size, opts, machine.EngineSequential, nil, probe, nil)
}

// RunOneProbedOn is RunOneProbed under an explicit engine mode (the
// wardensim -engine flag).
func RunOneProbedOn(emode machine.EngineMode, cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options, probe *engine.Probe) (Result, error) {
	return runObserved(cfg, proto, entry, size, opts, emode, nil, probe, nil)
}

// RunOneTracedOn is RunOneProbedOn with a host-side PDES epoch hook
// attached (see engine.EpochEvent) — the fleet worker's span-tracing
// path. The hook observes scheduler phase boundaries only and cannot
// change a measurement; it never fires under the sequential engine. A
// nil hook makes this identical to RunOneProbedOn.
func RunOneTracedOn(emode machine.EngineMode, cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options, probe *engine.Probe, hook func(engine.EpochEvent)) (Result, error) {
	return runObserved(cfg, proto, entry, size, opts, emode, nil, probe, hook)
}

// RunOneInstrumentedOn is the fully-loaded entry point: an event sink, a
// progress probe, and a PDES epoch hook together — the fleet worker's
// attribution path. Every attachment is pure observation, so results are
// identical to RunOne's.
func RunOneInstrumentedOn(emode machine.EngineMode, cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options, attach func(*machine.Machine) core.Sink, probe *engine.Probe, hook func(engine.EpochEvent)) (Result, error) {
	return runObserved(cfg, proto, entry, size, opts, emode, attach, probe, hook)
}

// runObserved is the common simulation core behind RunOne, RunOneObserved,
// and RunOneProbed: build the machine, optionally attach a sink, a
// progress probe, and/or an epoch hook, run, verify, measure. No
// attachment can change a measurement — the sink path is event emission
// only, the probe is a pair of host-side atomics, and the epoch hook
// fires on the scheduler goroutine at phase boundaries.
func runObserved(cfg topology.Config, proto core.Protocol, entry pbbs.Entry, size int, opts hlpl.Options, emode machine.EngineMode, attach func(*machine.Machine) core.Sink, probe *engine.Probe, hook func(engine.EpochEvent)) (Result, error) {
	m := machine.New(cfg, proto)
	m.SetEngineMode(emode)
	if probe != nil {
		m.SetProbe(probe)
	}
	if hook != nil {
		m.SetEpochHook(hook)
	}
	if attach != nil {
		m.System().SetSink(attach(m))
	}
	w := entry.New(size)
	if w.Prepare != nil {
		w.Prepare(m)
	}
	rt := hlpl.New(m, opts)
	cycles, err := rt.Run(w.Root)
	m.System().SetSink(nil)
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s on %s/%v: %w", entry.Name, cfg.Name, proto, err)
	}
	if err := w.Verify(m); err != nil {
		return Result{}, fmt.Errorf("bench: %s on %s/%v: verification failed: %w", entry.Name, cfg.Name, proto, err)
	}
	model := energy.Default(cfg)
	ctr := *m.Counters()
	return Result{
		Benchmark: entry.Name,
		Protocol:  proto,
		Config:    cfg,
		Size:      size,
		Cycles:    cycles,
		Counters:  ctr,
		Energy:    model.Evaluate(&ctr, cycles, cfg),
	}, nil
}

// EventsBenchmarks is the subset profiled by wardenbench -events: strong
// WARD beneficiaries (primes, dedup), a sort with heavy data movement
// (msort), and a divide-and-conquer geometry kernel (quickhull) — a spread
// matching the paper's deep-dive set in §7.2.
var EventsBenchmarks = []string{"primes", "dedup", "msort", "quickhull"}

// EventsReport profiles each named benchmark (EventsBenchmarks when names
// is nil) under MESI and WARDen with a Metrics sink attached and renders
// the per-run distribution views. Runs are sequential — event aggregation
// is about insight, not throughput — and fully deterministic.
func EventsReport(w io.Writer, cfg topology.Config, sizes SizeClass, names []string, topN int) error {
	if names == nil {
		names = EventsBenchmarks
	}
	opts := hlpl.DefaultOptions()
	for _, name := range names {
		e, err := pbbs.ByName(name)
		if err != nil {
			return err
		}
		for _, proto := range core.Protocols("mesi", "warden") {
			met := core.NewMetrics()
			res, err := RunOneObserved(cfg, proto, e, sizes.pick(e), opts, func(*machine.Machine) core.Sink { return met })
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "=== %s · %v · %s (size %d) ===\n", e.Name, proto, cfg.Name, res.Size)
			fmt.Fprintf(w, "cycles: %d  IPC: %.3f  inv: %d  downgrades: %d\n",
				res.Cycles, res.IPC(), res.Counters.Invalidations, res.Counters.Downgrades)
			met.WriteReport(w, topN)
			fmt.Fprintln(w)
		}
	}
	return nil
}
