package bench

import (
	"bytes"
	"strings"
	"testing"

	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

func TestRunOneVerifies(t *testing.T) {
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	res, err := RunOne(cfg, core.WARDen, e, e.Small, hlpl.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Counters.Instructions == 0 || res.Energy.Total <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestComparisonMetrics(t *testing.T) {
	c := Comparison{Name: "x"}
	c.MESI.Cycles = 2000
	c.WARDen.Cycles = 1000
	c.MESI.Counters.Instructions = 10_000
	c.WARDen.Counters.Instructions = 10_000
	c.MESI.Counters.Invalidations = 300
	c.MESI.Counters.Downgrades = 100
	c.WARDen.Counters.Invalidations = 100
	c.WARDen.Counters.Downgrades = 50
	c.MESI.Energy.Total, c.WARDen.Energy.Total = 10, 8
	c.MESI.Energy.Interconnect, c.WARDen.Energy.Interconnect = 4, 1

	if c.Speedup() != 2 {
		t.Fatalf("speedup = %v", c.Speedup())
	}
	if c.InvDgReduced() != 250 {
		t.Fatalf("reduced = %d", c.InvDgReduced())
	}
	if got := c.InvDgReducedPerKilo(); got != 25 {
		t.Fatalf("per kilo = %v", got)
	}
	d, i := c.ReductionShares()
	if d != 20 || i != 80 {
		t.Fatalf("shares = %v/%v, want 20/80", d, i)
	}
	if c.TotalEnergySavings() != 20 || c.InterconnectSavings() != 75 {
		t.Fatalf("savings = %v/%v", c.TotalEnergySavings(), c.InterconnectSavings())
	}
	// IPC: MESI 5, WARDen 10 => +100%.
	if got := c.IPCImprovement(); got != 100 {
		t.Fatalf("IPC improvement = %v", got)
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(Small)
	runs := 0
	r.Progress = func(string) { runs++ }
	cfg := topology.XeonGold6126(1)
	cfg.CoresPerSocket = 4
	e, _ := pbbs.ByName("fib")
	if _, err := r.Compare(cfg, e); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("first compare simulated %d runs, want 2", runs)
	}
	if _, err := r.Compare(cfg, e); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("second compare re-simulated (%d runs)", runs)
	}
}

func TestMeans(t *testing.T) {
	if g := geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("geomean = %v", g)
	}
	if geomean(nil) != 0 || geomean([]float64{0, 2}) != 0 {
		t.Fatal("geomean edge cases")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
}

func TestTable1Report(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, nil, 300); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Same core", "Diff. core, same socket", "Diff. core, diff. socket", "1213.59"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Report(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	for _, want := range []string{"32 KB", "256 KB", "2.5 MB", "6-16-71", "3.3 GHz", "12"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSectorGranularityTrial(t *testing.T) {
	// Byte sectoring must be lossless; whole-block sectoring must corrupt
	// interleaved writers (that is the §6.1 point).
	lossless, err := sectorGranularityTrial(1)
	if err != nil {
		t.Fatal(err)
	}
	if lossless != 0 {
		t.Fatalf("byte sectoring corrupted %d bytes", lossless)
	}
	coarse, err := sectorGranularityTrial(64)
	if err != nil {
		t.Fatal(err)
	}
	if coarse == 0 {
		t.Fatal("block-granularity sectoring lost no data; the ablation is vacuous")
	}
}
