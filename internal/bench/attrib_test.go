package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warden/internal/attrib"
	"warden/internal/core"
	"warden/internal/hlpl"
	"warden/internal/machine"
	"warden/internal/obs"
	"warden/internal/pbbs"
	"warden/internal/topology"
)

// TestAttribMatchesUnobserved is the tentpole guarantee for the
// attribution layer, in the same shape as PRs 4/5/9's non-perturbation
// proofs: across all 14 PBBS benchmarks × every registered protocol ×
// both engines, a run with an attrib.Ledger attached produces exactly the
// measurement of a bare run, the ledger reconciles with zero residue
// against the measured cycle count, and the subject:baseline explanations
// (warden:mesi and sisd:mesi) decompose the cycle delta into buckets that
// sum exactly to it.
func TestAttribMatchesUnobserved(t *testing.T) {
	cfg := topology.XeonGold6126(2)
	opts := hlpl.DefaultOptions()
	type side struct {
		led    *attrib.Ledger
		cycles uint64
	}
	ledgers := make(map[string]map[string]side)
	for _, e := range pbbs.Suite {
		ledgers[e.Name] = make(map[string]side)
		for _, proto := range core.All() {
			bare, err := RunOne(cfg, proto, e, Small.pick(e), opts)
			if err != nil {
				t.Fatalf("%s/%v bare: %v", e.Name, proto, err)
			}
			for _, emode := range []machine.EngineMode{machine.EngineSequential, machine.EnginePDES} {
				led := attrib.New(attrib.Config{})
				res, err := RunOneObservedOn(emode, cfg, proto, e, Small.pick(e), opts,
					func(*machine.Machine) core.Sink { return led })
				if err != nil {
					t.Fatalf("%s/%v/%v attrib: %v", e.Name, proto, emode, err)
				}
				if res != bare {
					t.Errorf("%s/%v/%v: attribution perturbed the run:\nbare:   %+v\nattrib: %+v",
						e.Name, proto, emode, bare, res)
				}
				if err := led.Reconcile(res.Cycles); err != nil {
					t.Errorf("%s/%v/%v: %v", e.Name, proto, emode, err)
				}
				if emode == machine.EngineSequential {
					ledgers[e.Name][strings.ToLower(proto.String())] = side{led: led, cycles: res.Cycles}
				}
			}
		}
	}
	for _, e := range pbbs.Suite {
		m := ledgers[e.Name]
		for _, pair := range [][2]string{{"warden", "mesi"}, {"sisd", "mesi"}} {
			s, sok := m[pair[0]]
			b, bok := m[pair[1]]
			if !sok || !bok {
				t.Fatalf("%s: missing ledgers for %v", e.Name, pair)
			}
			ex, err := attrib.Explain(pair[0], s.led, s.cycles, pair[1], b.led, b.cycles)
			if err != nil {
				t.Errorf("%s %s:%s: %v", e.Name, pair[0], pair[1], err)
				continue
			}
			var sum int64
			for _, d := range ex.Deltas {
				sum += d.Delta
			}
			if sum != ex.CycleDelta || ex.CycleDelta != int64(s.cycles)-int64(b.cycles) {
				t.Errorf("%s %s:%s: buckets sum %d, delta %d (subject %d baseline %d)",
					e.Name, pair[0], pair[1], sum, ex.CycleDelta, s.cycles, b.cycles)
			}
		}
	}
}

// TestRunnerAttribArtifactsAndMetrics covers the harness wiring: a Runner
// with SetAttrib writes the .attrib.jsonl/.blocks.jsonl artifacts,
// registers flight-recorder summaries on the run (served at
// /runs/{id}/blocks), and exports the warden_attrib_* families.
func TestRunnerAttribArtifactsAndMetrics(t *testing.T) {
	dir := t.TempDir()
	e, err := pbbs.ByName("primes")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := NewRunner(Small)
	r.SetObserver(reg)
	r.SetAttrib(AttribConfig{Dir: dir})
	// Telemetry rides the same instrumented path; enabling both pins the
	// composed-sink matrix (each sink alone is covered elsewhere).
	r.SetTelemetry(TelemetryConfig{Dir: t.TempDir()})
	cfg := eventsTestConfig()
	plain, err := RunOne(cfg, core.Protocols("warden")[0], e, Small.pick(e), r.Opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.runWith(cfg, core.Protocols("warden")[0], e, Small.pick(e), r.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if res != plain {
		t.Fatalf("attrib-enabled Runner perturbed the measurement:\nplain: %+v\ngot:   %+v", plain, res)
	}
	for _, suffix := range []string{".attrib.jsonl", ".blocks.jsonl"} {
		matches, _ := filepath.Glob(filepath.Join(dir, "*"+suffix))
		if len(matches) != 1 {
			t.Fatalf("want one %s artifact in %s, got %v", suffix, dir, matches)
		}
		if data, err := os.ReadFile(matches[0]); err != nil || len(data) == 0 {
			t.Fatalf("artifact %s unreadable or empty: %v", matches[0], err)
		}
	}

	// Flight summaries reach /runs/{id}/blocks.
	srv := &obs.Server{Registry: reg, Sources: []obs.Source{r}, DisableRuntimeMetrics: true}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := httpGet(t, ts.URL+"/runs/1/blocks")
	if !strings.Contains(body, `"transactions"`) {
		t.Fatalf("/runs/1/blocks missing flight summaries:\n%.400s", body)
	}
	metrics := httpGet(t, ts.URL+"/metrics")
	for _, fam := range []string{
		"warden_attrib_runs_total", "warden_attrib_cycles_total",
		"warden_attrib_accounts_total", "warden_attrib_blocks_total",
		"warden_attrib_residue_total",
	} {
		if !strings.Contains(metrics, "# TYPE "+fam+" counter") {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	if !strings.Contains(metrics, "warden_attrib_runs_total 1") {
		t.Errorf("warden_attrib_runs_total != 1:\n%s", grepLines(metrics, "warden_attrib"))
	}
	if !strings.Contains(metrics, fmt.Sprintf("warden_attrib_cycles_total %d", res.Cycles)) {
		t.Errorf("warden_attrib_cycles_total != run cycles %d:\n%s", res.Cycles, grepLines(metrics, "warden_attrib"))
	}
	if !strings.Contains(metrics, "warden_attrib_residue_total 0") {
		t.Errorf("warden_attrib_residue_total not zero:\n%s", grepLines(metrics, "warden_attrib"))
	}
}

// httpGet fetches url and returns the body, failing the test on any error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// grepLines filters body to lines containing sub, for failure output.
func grepLines(body, sub string) string {
	var out []string
	for _, ln := range strings.Split(body, "\n") {
		if strings.Contains(ln, sub) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
